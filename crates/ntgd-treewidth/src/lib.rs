//! # ntgd-treewidth
//!
//! Tree decompositions and treewidth of interpretations.
//!
//! The paper's sufficient criterion for decidability — the **stable tree model
//! property** (Definition 2, Theorem 2) — asks whether every satisfiable
//! `SM[D,Σ] ∧ ¬q` has a model of *finite treewidth*.  The treewidth of an
//! interpretation is defined through tree decompositions of its set of
//! positive literals (equivalently, of its Gaifman graph).  This crate makes
//! those notions executable:
//!
//! * [`GaifmanGraph`] — the undirected graph whose vertices are the terms of
//!   an interpretation, with an edge between two terms whenever they co-occur
//!   in an atom;
//! * [`TreeDecomposition`] — labelled trees with the two validity conditions
//!   of the paper's Section 3.4 ([`TreeDecomposition::validate`]) and their
//!   width;
//! * [`min_degree_decomposition`] / [`min_fill_decomposition`] — elimination
//!   order heuristics giving upper bounds on the treewidth;
//! * [`exact_treewidth`] — exact treewidth of small graphs via dynamic
//!   programming over vertex subsets;
//! * [`treewidth_upper_bound`] / [`interpretation_treewidth`] — convenience
//!   entry points for interpretations.
//!
//! The experiments use this to demonstrate Theorem 3's model-theoretic core:
//! stable models of weakly-acyclic programs are finite (treewidth trivially
//! finite and small), while the grid-like gadgets behind Theorems 4/5 produce
//! interpretations whose treewidth grows with the grid side.

pub mod decomposition;
pub mod exact;
pub mod graph;
pub mod heuristics;

pub use decomposition::{Bag, DecompositionError, TreeDecomposition};
pub use exact::exact_treewidth;
pub use graph::GaifmanGraph;
pub use heuristics::{min_degree_decomposition, min_fill_decomposition, EliminationOrder};

use ntgd_core::Interpretation;

/// An upper bound on the treewidth of an interpretation, computed with the
/// min-fill heuristic (exact on chordal graphs, and exact in practice on the
/// small structures produced by the chase and the stable-model engine).
pub fn treewidth_upper_bound(interpretation: &Interpretation) -> usize {
    let graph = GaifmanGraph::of_interpretation(interpretation);
    min_fill_decomposition(&graph).width()
}

/// The exact treewidth of an interpretation, if its Gaifman graph is small
/// enough for the exact algorithm (at most `max_vertices` vertices);
/// otherwise the min-fill upper bound is returned together with `false`.
pub fn interpretation_treewidth(
    interpretation: &Interpretation,
    max_vertices: usize,
) -> (usize, bool) {
    let graph = GaifmanGraph::of_interpretation(interpretation);
    if graph.vertex_count() <= max_vertices {
        (exact_treewidth(&graph), true)
    } else {
        (min_fill_decomposition(&graph).width(), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_parser::parse_database;

    #[test]
    fn a_single_binary_atom_has_treewidth_one() {
        let db = parse_database("edge(a, b).").unwrap();
        let interpretation = db.to_interpretation();
        assert_eq!(treewidth_upper_bound(&interpretation), 1);
        assert_eq!(interpretation_treewidth(&interpretation, 16), (1, true));
    }

    #[test]
    fn a_path_has_treewidth_one_and_a_triangle_two() {
        let path = parse_database("edge(a, b). edge(b, c). edge(c, d).")
            .unwrap()
            .to_interpretation();
        assert_eq!(interpretation_treewidth(&path, 16).0, 1);

        let triangle = parse_database("edge(a, b). edge(b, c). edge(c, a).")
            .unwrap()
            .to_interpretation();
        assert_eq!(interpretation_treewidth(&triangle, 16).0, 2);
    }

    #[test]
    fn wide_atoms_force_large_bags() {
        let db = parse_database("r(a, b, c, d, e).").unwrap();
        let interpretation = db.to_interpretation();
        // All five terms co-occur, so every decomposition needs a bag with
        // all of them: treewidth 4.
        assert_eq!(interpretation_treewidth(&interpretation, 16), (4, true));
    }

    #[test]
    fn falls_back_to_the_heuristic_above_the_vertex_limit() {
        let db = parse_database("edge(a, b). edge(b, c). edge(c, d).").unwrap();
        let interpretation = db.to_interpretation();
        let (width, exact) = interpretation_treewidth(&interpretation, 2);
        assert!(!exact);
        assert_eq!(width, 1);
    }
}
