//! Exact treewidth of small graphs.
//!
//! The treewidth of a graph equals the minimum, over all elimination orders,
//! of the maximum neighbourhood size encountered while eliminating.  The
//! classical Bodlaender–Koster dynamic programme computes this minimum over
//! *sets* of eliminated vertices rather than orders: for a set `S` of
//! already-eliminated vertices, the best achievable width only depends on
//! `S`, giving an `O(2ⁿ · n²)` algorithm.  That is ample for the structures
//! this workspace cares about (stable models and chase instances of the
//! paper's examples, grid gadgets of a handful of nodes); larger graphs
//! should use the heuristics of [`crate::heuristics`].

use std::collections::BTreeSet;

use crate::graph::GaifmanGraph;

/// The largest graph the exact algorithm accepts (2^25 states would already
/// be hundreds of megabytes).
pub const MAX_EXACT_VERTICES: usize = 24;

/// Size of the filled-in neighbourhood of `v` once the vertices in
/// `eliminated` have been eliminated: the number of vertices outside
/// `eliminated ∪ {v}` reachable from `v` through paths whose interior lies in
/// `eliminated`.
fn eliminated_degree(graph: &GaifmanGraph, eliminated: u32, v: usize) -> usize {
    let n = graph.vertex_count();
    let mut reachable: BTreeSet<usize> = BTreeSet::new();
    let mut seen = vec![false; n];
    let mut frontier = vec![v];
    seen[v] = true;
    while let Some(u) = frontier.pop() {
        for &w in graph.neighbours(u) {
            if seen[w] {
                continue;
            }
            seen[w] = true;
            if eliminated & (1 << w) != 0 {
                frontier.push(w);
            } else if w != v {
                reachable.insert(w);
            }
        }
    }
    reachable.len()
}

/// Computes the exact treewidth of the graph.
///
/// # Panics
///
/// Panics if the graph has more than [`MAX_EXACT_VERTICES`] vertices; callers
/// should fall back to [`crate::heuristics::min_fill_decomposition`] in that
/// case (see [`crate::interpretation_treewidth`]).
pub fn exact_treewidth(graph: &GaifmanGraph) -> usize {
    let n = graph.vertex_count();
    assert!(
        n <= MAX_EXACT_VERTICES,
        "exact treewidth limited to {MAX_EXACT_VERTICES} vertices, got {n}"
    );
    if n == 0 {
        return 0;
    }
    // best[s] = minimum over orders eliminating exactly the vertex set `s`
    // of the maximum eliminated-degree encountered.
    let states = 1usize << n;
    let mut best = vec![usize::MAX; states];
    best[0] = 0;
    for s in 0..states {
        if best[s] == usize::MAX {
            continue;
        }
        for v in 0..n {
            if s & (1 << v) != 0 {
                continue;
            }
            let degree = eliminated_degree(graph, s as u32, v);
            let candidate = best[s].max(degree);
            let next = s | (1 << v);
            if candidate < best[next] {
                best[next] = candidate;
            }
        }
    }
    best[states - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{min_degree_decomposition, min_fill_decomposition};
    use ntgd_core::{atom, cst, Interpretation};
    use ntgd_parser::parse_database;

    fn graph_of(text: &str) -> GaifmanGraph {
        GaifmanGraph::of_database(&parse_database(text).unwrap())
    }

    #[test]
    fn empty_and_edgeless_graphs_have_treewidth_zero() {
        assert_eq!(exact_treewidth(&GaifmanGraph::new()), 0);
        assert_eq!(exact_treewidth(&graph_of("p(a). p(b). p(c).")), 0);
    }

    #[test]
    fn trees_have_treewidth_one() {
        assert_eq!(
            exact_treewidth(&graph_of("edge(a, b). edge(a, c). edge(c, d). edge(c, e).")),
            1
        );
    }

    #[test]
    fn cycles_have_treewidth_two() {
        assert_eq!(
            exact_treewidth(&graph_of(
                "edge(a, b). edge(b, c). edge(c, d). edge(d, e). edge(e, a)."
            )),
            2
        );
    }

    #[test]
    fn cliques_have_treewidth_n_minus_one() {
        assert_eq!(exact_treewidth(&graph_of("r(a, b, c, d, e).")), 4);
    }

    #[test]
    fn the_three_by_three_grid_has_treewidth_three() {
        // Known value: the treewidth of the k×k grid is k.
        let mut interpretation = Interpretation::new();
        let name = |r: usize, c: usize| format!("v{r}{c}");
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    interpretation
                        .insert(atom("edge", vec![cst(&name(r, c)), cst(&name(r, c + 1))]));
                }
                if r + 1 < 3 {
                    interpretation
                        .insert(atom("edge", vec![cst(&name(r, c)), cst(&name(r + 1, c))]));
                }
            }
        }
        let graph = GaifmanGraph::of_interpretation(&interpretation);
        assert_eq!(graph.vertex_count(), 9);
        assert_eq!(exact_treewidth(&graph), 3);
    }

    #[test]
    fn heuristics_never_beat_the_exact_value() {
        for text in [
            "edge(a, b). edge(b, c). edge(c, a). edge(c, d). edge(d, e). edge(e, c).",
            "r(a, b, c). r(c, d, e). edge(e, a).",
            "edge(a, b). edge(b, c). edge(c, d). edge(d, a). edge(a, c).",
        ] {
            let graph = graph_of(text);
            let exact = exact_treewidth(&graph);
            assert!(min_fill_decomposition(&graph).width() >= exact);
            assert!(min_degree_decomposition(&graph).width() >= exact);
        }
    }

    #[test]
    fn heuristic_decompositions_are_valid_and_at_least_exact_width() {
        // Property test over deterministic pseudo-random graphs (xorshift64,
        // replacing the former proptest strategy: up to 14 edges on 8 nodes).
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..32 {
            let mut graph = GaifmanGraph::new();
            let edge_count = next() as usize % 14;
            for _ in 0..edge_count {
                let a = next() as usize % 8;
                let b = next() as usize % 8;
                if a != b {
                    graph.add_edge(cst(&format!("n{a}")), cst(&format!("n{b}")));
                }
            }
            let exact = exact_treewidth(&graph);
            for decomposition in [
                min_fill_decomposition(&graph),
                min_degree_decomposition(&graph),
            ] {
                assert_eq!(decomposition.validate(&graph), Ok(()), "case {case}");
                assert!(decomposition.width() >= exact, "case {case}");
            }
        }
    }
}
