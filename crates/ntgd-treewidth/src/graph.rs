//! The Gaifman graph of an interpretation (or database).
//!
//! The vertices are the terms occurring in the (positive) atoms; two terms are
//! adjacent whenever they occur together in some atom.  The treewidth of an
//! interpretation, as used in the paper's Section 3.4, is exactly the
//! treewidth of this graph (a bag covering an atom's terms corresponds to the
//! clique its terms form in the Gaifman graph).

use std::collections::{BTreeMap, BTreeSet};

use ntgd_core::{Atom, Database, Interpretation, Term};

/// An undirected graph over the ground terms of an interpretation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GaifmanGraph {
    vertices: Vec<Term>,
    index_of: BTreeMap<Term, usize>,
    adjacency: Vec<BTreeSet<usize>>,
}

impl GaifmanGraph {
    /// Creates an empty graph.
    pub fn new() -> GaifmanGraph {
        GaifmanGraph::default()
    }

    /// Builds the Gaifman graph of an interpretation (its positive atoms).
    pub fn of_interpretation(interpretation: &Interpretation) -> GaifmanGraph {
        let mut graph = GaifmanGraph::new();
        for atom in interpretation.atoms() {
            graph.add_atom(atom);
        }
        graph
    }

    /// Builds the Gaifman graph of a database.
    pub fn of_database(database: &Database) -> GaifmanGraph {
        let mut graph = GaifmanGraph::new();
        for atom in database.facts() {
            graph.add_atom(atom);
        }
        graph
    }

    /// Adds a vertex (no-op if it already exists) and returns its index.
    pub fn add_vertex(&mut self, term: Term) -> usize {
        if let Some(index) = self.index_of.get(&term) {
            return *index;
        }
        let index = self.vertices.len();
        self.vertices.push(term);
        self.index_of.insert(term, index);
        self.adjacency.push(BTreeSet::new());
        index
    }

    /// Adds an undirected edge between two terms (vertices are created on
    /// demand; self-loops are ignored).
    pub fn add_edge(&mut self, a: Term, b: Term) {
        let ia = self.add_vertex(a);
        let ib = self.add_vertex(b);
        if ia == ib {
            return;
        }
        self.adjacency[ia].insert(ib);
        self.adjacency[ib].insert(ia);
    }

    /// Adds the clique induced by an atom's terms.
    pub fn add_atom(&mut self, atom: &Atom) {
        let terms: Vec<Term> = atom.terms().copied().collect();
        for term in &terms {
            self.add_vertex(*term);
        }
        for (i, a) in terms.iter().enumerate() {
            for b in terms.iter().skip(i + 1) {
                self.add_edge(*a, *b);
            }
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// The vertices, in insertion order.
    pub fn vertices(&self) -> &[Term] {
        &self.vertices
    }

    /// The term of a vertex index.
    pub fn term_of(&self, index: usize) -> Term {
        self.vertices[index]
    }

    /// The index of a term, if it is a vertex.
    pub fn index_of(&self, term: &Term) -> Option<usize> {
        self.index_of.get(term).copied()
    }

    /// Returns `true` if the two terms are adjacent.
    pub fn adjacent(&self, a: &Term, b: &Term) -> bool {
        match (self.index_of(a), self.index_of(b)) {
            (Some(ia), Some(ib)) => self.adjacency[ia].contains(&ib),
            _ => false,
        }
    }

    /// The neighbour indices of a vertex index.
    pub fn neighbours(&self, index: usize) -> &BTreeSet<usize> {
        &self.adjacency[index]
    }

    /// The degree of a vertex index.
    pub fn degree(&self, index: usize) -> usize {
        self.adjacency[index].len()
    }

    /// The maximum degree of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Returns the connected components as sets of vertex indices.
    pub fn connected_components(&self) -> Vec<BTreeSet<usize>> {
        let mut seen = vec![false; self.vertex_count()];
        let mut components = Vec::new();
        for start in 0..self.vertex_count() {
            if seen[start] {
                continue;
            }
            let mut component = BTreeSet::new();
            let mut frontier = vec![start];
            seen[start] = true;
            while let Some(v) = frontier.pop() {
                component.insert(v);
                for &w in &self.adjacency[v] {
                    if !seen[w] {
                        seen[w] = true;
                        frontier.push(w);
                    }
                }
            }
            components.push(component);
        }
        components
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::cst;
    use ntgd_parser::parse_database;

    #[test]
    fn atoms_induce_cliques() {
        let db = parse_database("r(a, b, c).").unwrap();
        let g = GaifmanGraph::of_database(&db);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.adjacent(&cst("a"), &cst("b")));
        assert!(g.adjacent(&cst("b"), &cst("c")));
        assert!(g.adjacent(&cst("a"), &cst("c")));
    }

    #[test]
    fn shared_terms_connect_atoms() {
        let db = parse_database("edge(a, b). edge(b, c).").unwrap();
        let g = GaifmanGraph::of_database(&db);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.adjacent(&cst("a"), &cst("c")));
    }

    #[test]
    fn repeated_terms_do_not_create_self_loops() {
        let db = parse_database("sameAs(a, a).").unwrap();
        let g = GaifmanGraph::of_database(&db);
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn unary_atoms_contribute_isolated_vertices() {
        let db = parse_database("p(a). p(b). edge(b, c).").unwrap();
        let g = GaifmanGraph::of_database(&db);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(g.index_of(&cst("a")).unwrap()), 0);
    }

    #[test]
    fn connected_components_split_disjoint_facts() {
        let db = parse_database("edge(a, b). edge(c, d). p(e).").unwrap();
        let g = GaifmanGraph::of_database(&db);
        let components = g.connected_components();
        assert_eq!(components.len(), 3);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = components.iter().map(BTreeSet::len).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 2, 2]);
    }

    #[test]
    fn interpretation_and_database_graphs_agree() {
        let db = parse_database("edge(a, b). edge(b, c). p(a).").unwrap();
        let from_db = GaifmanGraph::of_database(&db);
        let from_interpretation = GaifmanGraph::of_interpretation(&db.to_interpretation());
        assert_eq!(from_db.vertex_count(), from_interpretation.vertex_count());
        assert_eq!(from_db.edge_count(), from_interpretation.edge_count());
    }
}
