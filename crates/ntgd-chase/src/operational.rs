//! The chase-based ("operational") stable model semantics of Baget et al. \[3\],
//! reproduced as a comparison baseline.
//!
//! A (possibly infinite) set of atoms `M` is an operational stable model of
//! `(D, Σ)` if it can be obtained by chasing `D` with `Σ⁺` such that
//!
//! 1. every applied trigger is *sound*: none of the instantiated negative
//!    literals of its rule occurs in `M`, and
//! 2. the chase is *complete*: every active trigger that is not blocked is
//!    eventually applied.
//!
//! The search below enumerates chase runs with a deterministic (fair) trigger
//! order and branches, for every trigger of a rule with negative literals, on
//! whether the trigger is applied (recording that its negated atoms must stay
//! out of the model) or assumed blocked (verified against the final result).
//! Nulls are always fresh — this is precisely the behaviour the paper
//! criticises in Example 2: the chase never reuses a constant to witness an
//! existential variable, which makes `¬hasFather(alice, bob)` (unexpectedly)
//! certain.

use std::collections::BTreeSet;

use ntgd_core::{Atom, Database, Interpretation, NullFactory, Program, Substitution};

use crate::trigger::{active_triggers, apply_trigger, is_active, Trigger};

/// Configuration for the operational-semantics search.
#[derive(Clone, Debug)]
pub struct OperationalConfig {
    /// Maximum chase steps along a single branch.
    pub max_steps: usize,
    /// Maximum number of stable models to return.
    pub max_models: usize,
}

impl Default for OperationalConfig {
    fn default() -> Self {
        OperationalConfig {
            max_steps: 10_000,
            max_models: 64,
        }
    }
}

/// A trigger that the search decided to *skip*, assuming it blocked.
#[derive(Clone, Debug)]
struct SkippedTrigger {
    trigger: Trigger,
    negatives: Vec<Atom>,
}

struct Search<'a> {
    positive: Program,
    original: &'a Program,
    config: &'a OperationalConfig,
    models: Vec<Interpretation>,
}

impl<'a> Search<'a> {
    fn negatives_of(&self, trigger: &Trigger) -> Vec<Atom> {
        trigger.negative_images(&self.original.rules()[trigger.rule_index])
    }

    fn run(
        &mut self,
        instance: Interpretation,
        forbidden: BTreeSet<Atom>,
        skipped: Vec<SkippedTrigger>,
        nulls: NullFactory,
        steps: usize,
    ) {
        if self.models.len() >= self.config.max_models || steps > self.config.max_steps {
            return;
        }
        // Soundness: no forbidden atom may have been derived.
        if forbidden.iter().any(|a| instance.contains(a)) {
            return;
        }
        let was_skipped = |t: &Trigger, skipped: &[SkippedTrigger]| {
            skipped.iter().any(|s| {
                s.trigger.rule_index == t.rule_index && s.trigger.homomorphism == t.homomorphism
            })
        };
        let next = active_triggers(&self.positive, &instance)
            .into_iter()
            .find(|t| !was_skipped(t, &skipped));

        let Some(trigger) = next else {
            // Fixpoint: completeness requires every skipped trigger that is
            // still active to actually be blocked in the final result.
            let complete = skipped.iter().all(|s| {
                !is_active(&s.trigger, &self.positive, &instance)
                    || s.negatives.iter().any(|a| instance.contains(a))
            });
            if complete && !self.models.iter().any(|m| m.same_atoms_as(&instance)) {
                self.models.push(instance);
            }
            return;
        };
        let negatives = self.negatives_of(&trigger);

        // Branch 1: apply the trigger (sound application).
        {
            let mut inst = instance.clone();
            let mut nf = nulls.clone();
            let mut forb = forbidden.clone();
            let mut ok = true;
            for n in &negatives {
                if inst.contains(n) {
                    ok = false;
                    break;
                }
                forb.insert(n.clone());
            }
            if ok {
                apply_trigger(&trigger, &self.positive, &mut inst, &mut nf);
                self.run(inst, forb, skipped.clone(), nf, steps + 1);
            }
        }

        // Branch 2: assume the trigger is blocked (only sensible for rules
        // with negative literals).
        if !negatives.is_empty() {
            let mut skp = skipped;
            skp.push(SkippedTrigger {
                trigger: Trigger {
                    rule_index: trigger.rule_index,
                    homomorphism: Substitution::from_bindings(
                        trigger
                            .homomorphism
                            .bindings()
                            .map(|(k, v)| (*k, *v))
                            .collect::<Vec<_>>(),
                    ),
                },
                negatives,
            });
            self.run(instance, forbidden, skp, nulls, steps + 1);
        }
    }
}

/// Enumerates the operational (chase-based) stable models of `(database,
/// program)` following \[3\], up to the configured limits.
pub fn operational_stable_models(
    database: &Database,
    program: &Program,
    config: &OperationalConfig,
) -> Vec<Interpretation> {
    let mut search = Search {
        positive: program.positive_part(),
        original: program,
        config,
        models: Vec::new(),
    };
    search.run(
        database.to_interpretation(),
        BTreeSet::new(),
        Vec::new(),
        NullFactory::new(),
        0,
    );
    search.models
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::{atom, cst};
    use ntgd_parser::{parse_database, parse_program, parse_query};

    /// Example 1/2 of the paper.
    fn example1() -> (Database, Program) {
        let db = parse_database("person(alice).").unwrap();
        let p = parse_program(
            "person(X) -> hasFather(X, Y).\
             hasFather(X, Y) -> sameAs(Y, Y).\
             hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).",
        )
        .unwrap();
        (db, p)
    }

    #[test]
    fn example2_the_chase_semantics_entails_the_unintended_query() {
        let (db, p) = example1();
        let models = operational_stable_models(&db, &p, &OperationalConfig::default());
        assert!(!models.is_empty());
        // In every operational stable model the father of alice is a fresh
        // null, never the constant bob, so ¬hasFather(alice, bob) is certain —
        // the unintended answer discussed in Example 2.
        for m in &models {
            assert!(!m.contains(&atom("hasFather", vec![cst("alice"), cst("bob")])));
            let father_is_null = m
                .atoms_with_predicate(ntgd_core::Symbol::intern("hasFather"))
                .all(|a| a.args()[1].is_null());
            assert!(father_is_null);
            // And alice is never abnormal.
            assert!(!parse_query("?- abnormal(alice).").unwrap().holds(m));
        }
    }

    #[test]
    fn positive_programs_have_exactly_the_chase_result() {
        let db = parse_database("p(a).").unwrap();
        let p = parse_program("p(X) -> q(X).").unwrap();
        let models = operational_stable_models(&db, &p, &OperationalConfig::default());
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].len(), 2);
    }

    #[test]
    fn odd_negative_loop_has_no_stable_model() {
        // p(a).  p(X), not q(X) -> r(X).  r(X) -> q(X).
        // Applying the first rule derives r(a) and then q(a), violating the
        // soundness of the application; assuming it blocked requires q(a) in
        // the final model, which never appears.  Hence no stable model.
        let db = parse_database("p(a).").unwrap();
        let p = parse_program("p(X), not q(X) -> r(X). r(X) -> q(X).").unwrap();
        let models = operational_stable_models(&db, &p, &OperationalConfig::default());
        assert!(models.is_empty());
    }

    #[test]
    fn even_cycle_yields_two_models() {
        // The classical even negative loop, existential-free:
        //   a ← not b.   b ← not a.   (guarded by a seed fact)
        let db = parse_database("seed(x).").unwrap();
        let p = parse_program("seed(X), not b -> a. seed(X), not a -> b.").unwrap();
        let models = operational_stable_models(&db, &p, &OperationalConfig::default());
        assert_eq!(models.len(), 2);
        let has_a = models
            .iter()
            .filter(|m| m.contains(&atom("a", vec![])))
            .count();
        let has_b = models
            .iter()
            .filter(|m| m.contains(&atom("b", vec![])))
            .count();
        assert_eq!(has_a, 1);
        assert_eq!(has_b, 1);
    }

    #[test]
    fn model_limit_is_respected() {
        let db = parse_database("seed(x).").unwrap();
        let p = parse_program("seed(X), not b -> a. seed(X), not a -> b.").unwrap();
        let cfg = OperationalConfig {
            max_models: 1,
            ..Default::default()
        };
        let models = operational_stable_models(&db, &p, &cfg);
        assert_eq!(models.len(), 1);
    }

    #[test]
    fn skipped_triggers_whose_head_gets_satisfied_do_not_block_completeness() {
        // p(a).  p(X), not s(X) -> q(X).  p(X) -> q(X).
        // Skipping the first rule's trigger is fine only if it is blocked or
        // its head becomes satisfied; the second rule satisfies the head, so a
        // single stable model exists either way.
        let db = parse_database("p(a).").unwrap();
        let p = parse_program("p(X), not s(X) -> q(X). p(X) -> q(X).").unwrap();
        let models = operational_stable_models(&db, &p, &OperationalConfig::default());
        assert_eq!(models.len(), 1);
        assert!(models[0].contains(&atom("q", vec![cst("a")])));
    }
}
