//! The oblivious (naive) chase.
//!
//! The oblivious chase applies *every* trigger exactly once, whether or not
//! its head is already satisfied.  It over-approximates the restricted chase
//! (its result is a superset up to homomorphic equivalence) and provides a
//! simple worst-case bound used in tests and benchmarks.

use std::collections::{HashSet, VecDeque};

use ntgd_core::{CompiledRuleSet, Database, NullFactory, Program, Term};

use crate::restricted::{ChaseConfig, ChaseOutcome, ChaseResult};
use crate::trigger::{apply_trigger, triggers_from_compiled};

/// Runs the oblivious chase of `database` with the positive part of `program`.
///
/// Each trigger — identified by its rule and the image of the rule's
/// universal variables — is applied at most once.  Like the restricted
/// chase, the worklist is extended semi-naively: after an application only
/// the triggers whose body uses a newly derived atom are discovered
/// ([`triggers_from_compiled`], over rule plans compiled once per run;
/// large rounds fan out over the scoped worker pool with a deterministic
/// merge, so the applied-trigger sequence is thread-count independent).
pub fn oblivious_chase(
    database: &Database,
    program: &Program,
    config: &ChaseConfig,
) -> ChaseResult {
    let positive = program.positive_part();
    let mut instance = database.to_interpretation();
    let plans = CompiledRuleSet::from_program(&positive, &instance);
    let mut nulls = NullFactory::new();
    let mut steps = 0usize;
    let mut applied: HashSet<(usize, Vec<(Term, Term)>)> = HashSet::new();
    let mut pending: VecDeque<_> = triggers_from_compiled(&plans, &instance, 0).into();

    loop {
        let Some(trigger) = pending.pop_front() else {
            return ChaseResult {
                instance,
                steps,
                nulls_created: nulls.issued(),
                outcome: ChaseOutcome::Terminated,
            };
        };
        if !applied.insert(trigger.key(&positive.rules()[trigger.rule_index])) {
            continue;
        }
        if config.max_steps.is_some_and(|max| steps >= max) {
            return ChaseResult {
                instance,
                steps,
                nulls_created: nulls.issued(),
                outcome: ChaseOutcome::StepLimitReached,
            };
        }
        let watermark = instance.len();
        apply_trigger(&trigger, &positive, &mut instance, &mut nulls);
        steps += 1;
        pending.extend(triggers_from_compiled(&plans, &instance, watermark));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restricted::restricted_chase;
    use ntgd_parser::{parse_database, parse_program};

    #[test]
    fn oblivious_chase_applies_redundant_triggers() {
        let db = parse_database("person(alice). hasFather(alice, bob).").unwrap();
        let p = parse_program("person(X) -> hasFather(X, Y).").unwrap();
        let restricted = restricted_chase(&db, &p, &ChaseConfig::default());
        let oblivious = oblivious_chase(&db, &p, &ChaseConfig::default());
        // The restricted chase is satisfied with the existing father; the
        // oblivious chase still invents a fresh one.
        assert_eq!(restricted.nulls_created, 0);
        assert_eq!(oblivious.nulls_created, 1);
        assert_eq!(oblivious.instance.len(), 3);
        assert!(oblivious.terminated());
    }

    #[test]
    fn oblivious_chase_result_contains_restricted_chase_atom_count() {
        let db = parse_database("e(a,b). e(b,c).").unwrap();
        let p = parse_program("e(X,Y) -> n(X), n(Y). n(X) -> m(X, Z).").unwrap();
        let restricted = restricted_chase(&db, &p, &ChaseConfig::default());
        let oblivious = oblivious_chase(&db, &p, &ChaseConfig::default());
        assert!(oblivious.instance.len() >= restricted.instance.len());
        assert!(oblivious.terminated());
    }

    #[test]
    fn oblivious_chase_respects_step_limit() {
        let db = parse_database("person(adam).").unwrap();
        let p = parse_program("person(X) -> parent(X, Y), person(Y).").unwrap();
        let r = oblivious_chase(&db, &p, &ChaseConfig::with_max_steps(10));
        assert_eq!(r.outcome, ChaseOutcome::StepLimitReached);
    }

    #[test]
    fn triggers_are_not_reapplied() {
        // Without the `applied` memo the single rule would fire forever on a
        // datalog (null-free) program; with it, the chase terminates.
        let db = parse_database("e(a,b). e(b,a).").unwrap();
        let p = parse_program("e(X,Y) -> e(Y,X).").unwrap();
        let r = oblivious_chase(&db, &p, &ChaseConfig::default());
        assert!(r.terminated());
        assert_eq!(r.instance.len(), 2);
    }
}
