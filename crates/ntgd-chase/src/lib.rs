//! # ntgd-chase
//!
//! Chase procedures for (positive parts of) TGD programs, plus the
//! *blocked-trigger* operational semantics of Baget et al. \[3\] that the paper
//! discusses (and criticises) in its introduction.
//!
//! * [`restricted_chase`] — the standard (a.k.a. restricted) chase: a trigger
//!   is applied only when its head is not already satisfied.  This is the
//!   variant referenced by Lemma 8 of the paper to bound the size of stable
//!   models of weakly-acyclic programs.
//! * [`skolem_chase`] — the Skolem (semi-oblivious) chase: witnesses are
//!   memoised per rule and frontier binding, mirroring Skolemization (the
//!   operational counterpart of the LP approach of Section 3.1).
//! * [`oblivious_chase`] — applies every trigger once, regardless of whether
//!   the head is already satisfied (used for worst-case bounds and testing).
//! * [`IncrementalChase`] — a resumable Skolem chase for long-lived
//!   reasoning sessions: asserted fact batches seed the semi-naive delta
//!   worklists (never a from-scratch re-chase), witnesses are named
//!   canonically so any batching of the same facts reaches the same
//!   instance, and epoch marks allow O(retracted) rollback.
//! * [`core_instance`] — cores of chase instances (minimal retracts), the
//!   canonical representatives under homomorphic equivalence.
//! * [`operational`] — the chase-based stable models of \[3\]: chase `Σ⁺` while
//!   guessing, for every trigger whose rule has negative literals, whether the
//!   trigger is *blocked* (some negated atom ends up in the final result) or
//!   *sound* (none does), and keep exactly the fair, sound, complete runs.
//!
//! All functions operate on the **positive parts** of the given rules; the
//! operational semantics additionally consults the negative literals as
//! described above.

pub mod core_instance;
pub mod incremental;
pub mod oblivious;
pub mod operational;
pub mod restricted;
pub mod skolem;
pub mod trigger;

pub use core_instance::{core_of, core_of_with, is_core, CoreConfig, CoreResult};
pub use incremental::{AssertSummary, ChaseBase, EpochMark, IncrementalChase, StepLimitExceeded};
pub use oblivious::oblivious_chase;
pub use operational::{operational_stable_models, OperationalConfig};
pub use restricted::{restricted_chase, ChaseConfig, ChaseOutcome, ChaseResult};
pub use skolem::skolem_chase;
pub use trigger::{
    active_triggers, active_triggers_from_compiled, activity_check_count, all_triggers,
    apply_trigger, triggers_from_compiled, Trigger,
};
