//! The restricted (standard) chase.

use std::collections::{HashMap, VecDeque};

use ntgd_core::{CompiledRuleSet, Database, Interpretation, NullFactory, Program, Symbol};

use crate::trigger::{active_triggers_from_compiled, apply_trigger, is_active_compiled, Trigger};

/// Configuration for a chase run.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// Maximum number of trigger applications before giving up, or `None`
    /// for no bound at all.  The chase of a weakly-acyclic program always
    /// terminates, but arbitrary programs may not; the default bound makes
    /// every call total.  `None` is reserved for callers that have *proved*
    /// termination (e.g. a `ntgd_classes::ClassReport` with a terminating
    /// verdict) — an unbounded chase of a non-terminating program diverges.
    pub max_steps: Option<usize>,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            max_steps: Some(100_000),
        }
    }
}

impl ChaseConfig {
    /// A configuration with the given step bound.
    pub fn with_max_steps(max_steps: usize) -> ChaseConfig {
        ChaseConfig {
            max_steps: Some(max_steps),
        }
    }

    /// A configuration with no step bound: only sound for programs whose
    /// chase provably terminates.
    pub fn unbounded() -> ChaseConfig {
        ChaseConfig { max_steps: None }
    }
}

/// Whether the chase reached a fixpoint or was cut off by the step bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseOutcome {
    /// No active trigger remained: the result is a universal model of `(D, Σ⁺)`.
    Terminated,
    /// The step bound was hit before reaching a fixpoint.
    StepLimitReached,
}

/// The result of a chase run.
#[derive(Clone, Debug)]
pub struct ChaseResult {
    /// The final instance.
    pub instance: Interpretation,
    /// Number of trigger applications performed.
    pub steps: usize,
    /// Number of labelled nulls invented.
    pub nulls_created: u64,
    /// Whether a fixpoint was reached.
    pub outcome: ChaseOutcome,
}

impl ChaseResult {
    /// Returns `true` if the chase reached a fixpoint.
    pub fn terminated(&self) -> bool {
        self.outcome == ChaseOutcome::Terminated
    }
}

/// Runs the restricted chase of `database` with the **positive part** of
/// `program` (negative literals are dropped, i.e. this is the chase of
/// `(D, Σ⁺)` used by Lemma 8 of the paper).
///
/// The chase is evaluated semi-naively: a FIFO worklist is seeded with the
/// triggers on the database and extended, after every application, with only
/// the triggers whose body uses a newly derived atom
/// ([`active_triggers_from_compiled`]), instead of rematching every rule against the
/// whole instance per step.  Applying triggers in discovery order is a fair
/// strategy; activity (the head not being satisfied yet) is re-checked when a
/// trigger is popped.
///
/// Rule bodies and heads are compiled into a [`CompiledRuleSet`] once per
/// run; every round and every activity check executes cached plans.
///
/// Large rounds are matched in parallel on the persistent worker pool (see
/// [`active_triggers_from_compiled`] and `ntgd_core::parallel`); the
/// deterministic merge order guarantees the chase result — including the
/// arena insertion order and the names of invented nulls — is identical at
/// every thread count.
///
/// # Incremental trigger deactivation
///
/// Since instances only grow, head satisfaction is monotone: once a
/// trigger's head is satisfied it stays satisfied.  The chase exploits this
/// with a *deactivation index*: triggers are verified active when they are
/// discovered ([`active_triggers_from_compiled`]; inactive ones are dropped
/// for good), and every queued trigger remembers the arena length at which
/// its activity was last verified.  A per-rule epoch records the arena
/// length after the most recent insertion of an atom whose predicate occurs
/// in that rule's head; on pop, the (indexed-join) activity re-check runs
/// **only when the rule's head epoch has advanced past the trigger's
/// verification point** — i.e. only when an atom that could possibly satisfy
/// the head has actually arrived since.  Rules with pairwise-disjoint head
/// predicates never re-check each other's triggers.
pub fn restricted_chase(
    database: &Database,
    program: &Program,
    config: &ChaseConfig,
) -> ChaseResult {
    let positive = program.positive_part();
    let mut instance = database.to_interpretation();
    let plans = CompiledRuleSet::from_program(&positive, &instance);
    let mut nulls = NullFactory::new();
    let mut steps = 0usize;

    // Deactivation index: predicate → rules with that predicate in the head,
    // and per-rule epochs (arena length after the last head-relevant insert).
    let mut rules_by_head_predicate: HashMap<Symbol, Vec<usize>> = HashMap::new();
    for (idx, rule) in positive.iter() {
        for atom in rule.head() {
            let rules = rules_by_head_predicate.entry(atom.predicate()).or_default();
            if rules.last() != Some(&idx) {
                rules.push(idx);
            }
        }
    }
    let mut head_epoch: Vec<usize> = vec![0; positive.len()];

    /// A queued trigger plus the arena length at which it was last verified
    /// active.
    struct Pending {
        trigger: Trigger,
        verified_at: usize,
    }
    let verified_at = instance.len();
    let mut pending: VecDeque<Pending> = active_triggers_from_compiled(&plans, &instance, 0)
        .into_iter()
        .map(|trigger| Pending {
            trigger,
            verified_at,
        })
        .collect();

    loop {
        let Some(Pending {
            trigger,
            verified_at,
        }) = pending.pop_front()
        else {
            return ChaseResult {
                instance,
                steps,
                nulls_created: nulls.issued(),
                outcome: ChaseOutcome::Terminated,
            };
        };
        // Re-check activity only if a head-relevant atom arrived since the
        // trigger was verified; otherwise the verified answer still stands.
        if head_epoch[trigger.rule_index] > verified_at
            && !is_active_compiled(&trigger, &plans, &instance)
        {
            continue;
        }
        if config.max_steps.is_some_and(|max| steps >= max) {
            return ChaseResult {
                instance,
                steps,
                nulls_created: nulls.issued(),
                outcome: ChaseOutcome::StepLimitReached,
            };
        }
        let watermark = instance.len();
        let added = apply_trigger(&trigger, &positive, &mut instance, &mut nulls);
        steps += 1;
        for atom in &added {
            if let Some(rules) = rules_by_head_predicate.get(&atom.predicate()) {
                for &rule in rules {
                    head_epoch[rule] = instance.len();
                }
            }
        }
        let verified_at = instance.len();
        pending.extend(
            active_triggers_from_compiled(&plans, &instance, watermark)
                .into_iter()
                .map(|trigger| Pending {
                    trigger,
                    verified_at,
                }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::{atom, cst, Query, Symbol};
    use ntgd_parser::{parse_database, parse_program, parse_query};

    #[test]
    fn chase_of_terminating_program_reaches_fixpoint() {
        let db = parse_database("person(alice).").unwrap();
        let p = parse_program("person(X) -> hasFather(X, Y). hasFather(X, Y) -> sameAs(Y, Y).")
            .unwrap();
        let r = restricted_chase(&db, &p, &ChaseConfig::default());
        assert!(r.terminated());
        assert_eq!(r.steps, 2);
        assert_eq!(r.nulls_created, 1);
        assert_eq!(r.instance.len(), 3);
        let q = parse_query("?- hasFather(X, Y), sameAs(Y, Y).").unwrap();
        assert!(q.holds(&r.instance));
    }

    #[test]
    fn chase_reuses_existing_witnesses() {
        // The father is already present, so no null should be created.
        let db = parse_database("person(alice). hasFather(alice, bob).").unwrap();
        let p = parse_program("person(X) -> hasFather(X, Y).").unwrap();
        let r = restricted_chase(&db, &p, &ChaseConfig::default());
        assert!(r.terminated());
        assert_eq!(r.steps, 0);
        assert_eq!(r.nulls_created, 0);
    }

    #[test]
    fn non_terminating_chase_is_cut_off() {
        // person(X) -> parent(X, Y), person(Y): the classical infinite chase.
        let db = parse_database("person(adam).").unwrap();
        let p = parse_program("person(X) -> parent(X, Y), person(Y).").unwrap();
        let r = restricted_chase(&db, &p, &ChaseConfig::with_max_steps(25));
        assert_eq!(r.outcome, ChaseOutcome::StepLimitReached);
        assert_eq!(r.steps, 25);
        assert!(r.instance.len() > 25);
    }

    #[test]
    fn negative_literals_are_ignored() {
        // The chase of Σ⁺ fires the rule even though the negative literal
        // would block it under a stable semantics.
        let db = parse_database("p(a). q(a).").unwrap();
        let p = parse_program("p(X), not q(X) -> r(X).").unwrap();
        let r = restricted_chase(&db, &p, &ChaseConfig::default());
        assert!(r.terminated());
        assert!(r.instance.contains(&atom("r", vec![cst("a")])));
    }

    #[test]
    fn weakly_acyclic_example_produces_polynomial_instance() {
        // A two-rule weakly-acyclic program over a small relation.
        let db = parse_database("e(a, b). e(b, c). e(c, d).").unwrap();
        let p = parse_program("e(X, Y) -> n(X), n(Y). n(X) -> l(X, Z).").unwrap();
        let r = restricted_chase(&db, &p, &ChaseConfig::default());
        assert!(r.terminated());
        // 4 nodes, each with one invented label plus the original edges.
        assert_eq!(r.nulls_created, 4);
        let q = Query::new(
            vec![Symbol::intern("X")],
            vec![ntgd_core::pos("n", vec![ntgd_core::var("X")])],
        )
        .unwrap();
        assert_eq!(q.answers(&r.instance).len(), 4);
    }

    #[test]
    fn chase_compiles_each_rule_plan_exactly_once() {
        use ntgd_core::matcher::plan_compile_count;
        let db = parse_database("e(a, b). e(b, c). e(c, d).").unwrap();
        let p = parse_program("e(X, Y) -> n(X), n(Y). n(X) -> l(X, Z).").unwrap();
        let positive = p.positive_part();
        // A full multi-round chase (7 steps here) compiles exactly one
        // rule-set worth of plans: every round executes cached plans.  The
        // counter is process-wide (pool-worker compiles are counted too), so
        // concurrently running tests can compile inside the measured window;
        // retry until an interference-free window is observed — a chase that
        // genuinely recompiles per round fails every attempt.
        let mut clean_window = false;
        for _ in 0..50 {
            // How many plan compilations one rule-set build costs.
            let before_build = plan_compile_count();
            let _plans =
                CompiledRuleSet::from_program(&positive, &ntgd_core::Interpretation::new());
            let per_build = plan_compile_count() - before_build;
            let before_run = plan_compile_count();
            let r = restricted_chase(&db, &p, &ChaseConfig::default());
            assert!(r.terminated());
            assert!(r.steps > 1, "needs several rounds to be meaningful");
            if per_build > 0 && plan_compile_count() - before_run == per_build {
                clean_window = true;
                break;
            }
        }
        assert!(clean_window, "chase rounds must never recompile rule plans");
    }

    #[test]
    fn deactivation_index_skips_unrelated_recheck_on_pop() {
        use crate::trigger::activity_check_count;
        // Two rules with disjoint head predicates.  Discovery verifies all
        // four triggers (4 checks); applying an `a`-rule trigger only bumps
        // rule 0's head epoch, so the queued `b`-rule triggers are applied
        // without a pop re-check.  Re-checks happen exactly when a pending
        // trigger's own rule applied first: once for p(c2), once for r(d2) —
        // 6 checks in total.  Without the index every pop would re-check
        // (8 checks).  The counter is process-wide, so the measurement
        // retries until a window without concurrent-test interference is
        // observed; a chase that genuinely re-checks every pop fails every
        // attempt.
        let db = parse_database("p(c1). p(c2). r(d1). r(d2).").unwrap();
        let p = parse_program("p(X) -> q(X, Y). r(X) -> s(X, Y).").unwrap();
        let mut clean_window = false;
        for _ in 0..50 {
            let before = activity_check_count();
            let result = restricted_chase(&db, &p, &ChaseConfig::default());
            assert!(result.terminated());
            assert_eq!(result.steps, 4);
            let checks = activity_check_count() - before;
            assert!(checks >= 6, "discovery checks cannot be skipped");
            if checks == 6 {
                clean_window = true;
                break;
            }
        }
        assert!(
            clean_window,
            "pop re-checks must be limited to head-epoch advances"
        );
    }

    #[test]
    fn empty_program_returns_database() {
        let db = parse_database("p(a).").unwrap();
        let p = Program::new();
        let r = restricted_chase(&db, &p, &ChaseConfig::default());
        assert!(r.terminated());
        assert_eq!(r.instance.len(), 1);
        assert_eq!(r.steps, 0);
    }
}
