//! The restricted (standard) chase.

use std::collections::VecDeque;

use ntgd_core::{CompiledRuleSet, Database, Interpretation, NullFactory, Program};

use crate::trigger::{apply_trigger, is_active_compiled, triggers_from_compiled};

/// Configuration for a chase run.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// Maximum number of trigger applications before giving up.  The chase of
    /// a weakly-acyclic program always terminates, but arbitrary programs may
    /// not; the bound makes every call total.
    pub max_steps: usize,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig { max_steps: 100_000 }
    }
}

impl ChaseConfig {
    /// A configuration with the given step bound.
    pub fn with_max_steps(max_steps: usize) -> ChaseConfig {
        ChaseConfig { max_steps }
    }
}

/// Whether the chase reached a fixpoint or was cut off by the step bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseOutcome {
    /// No active trigger remained: the result is a universal model of `(D, Σ⁺)`.
    Terminated,
    /// The step bound was hit before reaching a fixpoint.
    StepLimitReached,
}

/// The result of a chase run.
#[derive(Clone, Debug)]
pub struct ChaseResult {
    /// The final instance.
    pub instance: Interpretation,
    /// Number of trigger applications performed.
    pub steps: usize,
    /// Number of labelled nulls invented.
    pub nulls_created: u64,
    /// Whether a fixpoint was reached.
    pub outcome: ChaseOutcome,
}

impl ChaseResult {
    /// Returns `true` if the chase reached a fixpoint.
    pub fn terminated(&self) -> bool {
        self.outcome == ChaseOutcome::Terminated
    }
}

/// Runs the restricted chase of `database` with the **positive part** of
/// `program` (negative literals are dropped, i.e. this is the chase of
/// `(D, Σ⁺)` used by Lemma 8 of the paper).
///
/// The chase is evaluated semi-naively: a FIFO worklist is seeded with the
/// triggers on the database and extended, after every application, with only
/// the triggers whose body uses a newly derived atom
/// ([`triggers_from_compiled`]), instead of rematching every rule against the
/// whole instance per step.  Applying triggers in discovery order is a fair
/// strategy; activity (the head not being satisfied yet) is re-checked when a
/// trigger is popped.
///
/// Rule bodies and heads are compiled into a [`CompiledRuleSet`] once per
/// run; every round and every activity check executes cached plans.
///
/// Large rounds are matched in parallel on the scoped worker pool (see
/// [`triggers_from_compiled`] and `ntgd_core::parallel`); the deterministic
/// merge order guarantees the chase result — including the arena insertion
/// order and the names of invented nulls — is identical at every thread
/// count.
pub fn restricted_chase(
    database: &Database,
    program: &Program,
    config: &ChaseConfig,
) -> ChaseResult {
    let positive = program.positive_part();
    let mut instance = database.to_interpretation();
    let plans = CompiledRuleSet::from_program(&positive, &instance);
    let mut nulls = NullFactory::new();
    let mut steps = 0usize;
    let mut pending: VecDeque<_> = triggers_from_compiled(&plans, &instance, 0).into();

    loop {
        let Some(trigger) = pending.pop_front() else {
            return ChaseResult {
                instance,
                steps,
                nulls_created: nulls.issued(),
                outcome: ChaseOutcome::Terminated,
            };
        };
        if !is_active_compiled(&trigger, &plans, &instance) {
            continue;
        }
        if steps >= config.max_steps {
            return ChaseResult {
                instance,
                steps,
                nulls_created: nulls.issued(),
                outcome: ChaseOutcome::StepLimitReached,
            };
        }
        let watermark = instance.len();
        apply_trigger(&trigger, &positive, &mut instance, &mut nulls);
        steps += 1;
        pending.extend(triggers_from_compiled(&plans, &instance, watermark));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::{atom, cst, Query, Symbol};
    use ntgd_parser::{parse_database, parse_program, parse_query};

    #[test]
    fn chase_of_terminating_program_reaches_fixpoint() {
        let db = parse_database("person(alice).").unwrap();
        let p = parse_program("person(X) -> hasFather(X, Y). hasFather(X, Y) -> sameAs(Y, Y).")
            .unwrap();
        let r = restricted_chase(&db, &p, &ChaseConfig::default());
        assert!(r.terminated());
        assert_eq!(r.steps, 2);
        assert_eq!(r.nulls_created, 1);
        assert_eq!(r.instance.len(), 3);
        let q = parse_query("?- hasFather(X, Y), sameAs(Y, Y).").unwrap();
        assert!(q.holds(&r.instance));
    }

    #[test]
    fn chase_reuses_existing_witnesses() {
        // The father is already present, so no null should be created.
        let db = parse_database("person(alice). hasFather(alice, bob).").unwrap();
        let p = parse_program("person(X) -> hasFather(X, Y).").unwrap();
        let r = restricted_chase(&db, &p, &ChaseConfig::default());
        assert!(r.terminated());
        assert_eq!(r.steps, 0);
        assert_eq!(r.nulls_created, 0);
    }

    #[test]
    fn non_terminating_chase_is_cut_off() {
        // person(X) -> parent(X, Y), person(Y): the classical infinite chase.
        let db = parse_database("person(adam).").unwrap();
        let p = parse_program("person(X) -> parent(X, Y), person(Y).").unwrap();
        let r = restricted_chase(&db, &p, &ChaseConfig::with_max_steps(25));
        assert_eq!(r.outcome, ChaseOutcome::StepLimitReached);
        assert_eq!(r.steps, 25);
        assert!(r.instance.len() > 25);
    }

    #[test]
    fn negative_literals_are_ignored() {
        // The chase of Σ⁺ fires the rule even though the negative literal
        // would block it under a stable semantics.
        let db = parse_database("p(a). q(a).").unwrap();
        let p = parse_program("p(X), not q(X) -> r(X).").unwrap();
        let r = restricted_chase(&db, &p, &ChaseConfig::default());
        assert!(r.terminated());
        assert!(r.instance.contains(&atom("r", vec![cst("a")])));
    }

    #[test]
    fn weakly_acyclic_example_produces_polynomial_instance() {
        // A two-rule weakly-acyclic program over a small relation.
        let db = parse_database("e(a, b). e(b, c). e(c, d).").unwrap();
        let p = parse_program("e(X, Y) -> n(X), n(Y). n(X) -> l(X, Z).").unwrap();
        let r = restricted_chase(&db, &p, &ChaseConfig::default());
        assert!(r.terminated());
        // 4 nodes, each with one invented label plus the original edges.
        assert_eq!(r.nulls_created, 4);
        let q = Query::new(
            vec![Symbol::intern("X")],
            vec![ntgd_core::pos("n", vec![ntgd_core::var("X")])],
        )
        .unwrap();
        assert_eq!(q.answers(&r.instance).len(), 4);
    }

    #[test]
    fn chase_compiles_each_rule_plan_exactly_once() {
        use ntgd_core::matcher::plan_compile_count;
        let db = parse_database("e(a, b). e(b, c). e(c, d).").unwrap();
        let p = parse_program("e(X, Y) -> n(X), n(Y). n(X) -> l(X, Z).").unwrap();
        let positive = p.positive_part();
        // A full multi-round chase (7 steps here) compiles exactly one
        // rule-set worth of plans: every round executes cached plans.  The
        // counter is process-wide (pool-worker compiles are counted too), so
        // concurrently running tests can compile inside the measured window;
        // retry until an interference-free window is observed — a chase that
        // genuinely recompiles per round fails every attempt.
        let mut clean_window = false;
        for _ in 0..50 {
            // How many plan compilations one rule-set build costs.
            let before_build = plan_compile_count();
            let _plans =
                CompiledRuleSet::from_program(&positive, &ntgd_core::Interpretation::new());
            let per_build = plan_compile_count() - before_build;
            let before_run = plan_compile_count();
            let r = restricted_chase(&db, &p, &ChaseConfig::default());
            assert!(r.terminated());
            assert!(r.steps > 1, "needs several rounds to be meaningful");
            if per_build > 0 && plan_compile_count() - before_run == per_build {
                clean_window = true;
                break;
            }
        }
        assert!(clean_window, "chase rounds must never recompile rule plans");
    }

    #[test]
    fn empty_program_returns_database() {
        let db = parse_database("p(a).").unwrap();
        let p = Program::new();
        let r = restricted_chase(&db, &p, &ChaseConfig::default());
        assert!(r.terminated());
        assert_eq!(r.instance.len(), 1);
        assert_eq!(r.steps, 0);
    }
}
