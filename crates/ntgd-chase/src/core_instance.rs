//! Cores of chase instances.
//!
//! A (finite) instance `I` is a **core** if every homomorphism `I → I` that is
//! the identity on constants is surjective (equivalently, injective).  The
//! *core of `I`* is a minimal sub-instance `C ⊆ I` such that some
//! homomorphism `I → C` fixes the constants; it is unique up to isomorphism
//! and is the canonical, most compact universal model.  Cores are the natural
//! yardstick when comparing the outputs of the restricted, Skolem and
//! oblivious chases (all three are homomorphically equivalent, and their
//! cores coincide up to null renaming); they also give the tightest instance
//! against which the model-size bound of Lemma 8 can be measured.
//!
//! The algorithm is the classical retraction search: repeatedly look for an
//! endomorphism whose image is a *proper* sub-instance (it must collapse some
//! labelled null onto another term) and restrict the instance to that image.
//! Finding such an endomorphism is NP-hard in general, so this is intended
//! for the moderate instance sizes produced by the chase on the paper's
//! examples and the benchmark workloads.

use ntgd_core::{matcher, Atom, Interpretation, Literal, Substitution, Term};

/// Configuration for the core computation.
#[derive(Clone, Copy, Debug)]
pub struct CoreConfig {
    /// Give up (returning the current instance unchanged) when the instance
    /// has more atoms than this.
    pub max_atoms: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig { max_atoms: 2_000 }
    }
}

/// The result of a core computation.
#[derive(Clone, Debug)]
pub struct CoreResult {
    /// The computed core (or the original instance when `gave_up` is true).
    pub core: Interpretation,
    /// Number of retraction steps performed.
    pub retractions: usize,
    /// `true` if the instance exceeded [`CoreConfig::max_atoms`] and was
    /// returned unchanged.
    pub gave_up: bool,
}

/// Turns an instance's atoms into a "frozen query": every labelled null
/// becomes a variable, so homomorphisms of the literal list into the instance
/// are exactly the endomorphisms fixing constants.
fn frozen_literals(instance: &Interpretation) -> Vec<Literal> {
    instance
        .atoms()
        .map(|atom| {
            let args = atom
                .args()
                .iter()
                .map(|term| match term {
                    Term::Null(id) => {
                        Term::Var(ntgd_core::Symbol::intern(&format!("__core_null_{id}")))
                    }
                    other => *other,
                })
                .collect();
            Literal::positive(Atom::new(atom.predicate(), args))
        })
        .collect()
}

fn null_variable_image(instance: &Interpretation, h: &Substitution) -> Vec<(Term, Term)> {
    instance
        .nulls()
        .into_iter()
        .map(|null| {
            let Term::Null(id) = null else { unreachable!() };
            let variable = Term::Var(ntgd_core::Symbol::intern(&format!("__core_null_{id}")));
            (null, h.apply_term(&variable))
        })
        .collect()
}

/// Applies an endomorphism (given as a null → term map) to the instance.
fn apply_endomorphism(instance: &Interpretation, mapping: &[(Term, Term)]) -> Interpretation {
    let mut substitution = Substitution::new();
    for (from, to) in mapping {
        substitution.bind(*from, *to);
    }
    Interpretation::from_atoms(instance.atoms().map(|a| substitution.apply_atom(a)))
}

/// Searches for an endomorphism of the instance (fixing constants) whose
/// image has strictly fewer atoms; returns the image if one exists.
fn proper_retraction(instance: &Interpretation) -> Option<Interpretation> {
    let literals = frozen_literals(instance);
    let mut found: Option<Interpretation> = None;
    matcher::for_each_homomorphism(
        &literals,
        instance,
        &Substitution::new(),
        &mut |candidate| {
            let mapping = null_variable_image(instance, candidate);
            // A proper retraction must identify some null with another term.
            if mapping.iter().all(|(null, image)| null == image) {
                return std::ops::ControlFlow::Continue(());
            }
            let image = apply_endomorphism(instance, &mapping);
            if image.len() < instance.len() {
                found = Some(image);
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            }
        },
    );
    found
}

/// Computes the core of an instance.
pub fn core_of_with(instance: &Interpretation, config: &CoreConfig) -> CoreResult {
    if instance.len() > config.max_atoms {
        return CoreResult {
            core: instance.clone(),
            retractions: 0,
            gave_up: true,
        };
    }
    let mut current = instance.clone();
    let mut retractions = 0usize;
    while let Some(smaller) = proper_retraction(&current) {
        current = smaller;
        retractions += 1;
    }
    CoreResult {
        core: current,
        retractions,
        gave_up: false,
    }
}

/// Computes the core of an instance with the default configuration.
pub fn core_of(instance: &Interpretation) -> Interpretation {
    core_of_with(instance, &CoreConfig::default()).core
}

/// Returns `true` if the instance is a core (no proper retraction exists).
pub fn is_core(instance: &Interpretation) -> bool {
    proper_retraction(instance).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oblivious::oblivious_chase;
    use crate::restricted::{restricted_chase, ChaseConfig};
    use crate::skolem::skolem_chase;
    use ntgd_core::matcher::exists_atom_homomorphism;
    use ntgd_parser::{parse_database, parse_program};

    #[test]
    fn databases_without_nulls_are_cores() {
        let db = parse_database("edge(a, b). edge(b, c). p(a).").unwrap();
        let instance = db.to_interpretation();
        assert!(is_core(&instance));
        assert_eq!(core_of(&instance).len(), instance.len());
    }

    #[test]
    fn a_redundant_null_is_folded_onto_a_constant() {
        // hasFather(alice, bob) makes the null witness redundant.
        let db = parse_database("person(alice). hasFather(alice, bob).").unwrap();
        let p = parse_program("person(X) -> hasFather(X, Y).").unwrap();
        let config = ChaseConfig::default();
        let skolem = skolem_chase(&db, &p, &config);
        assert_eq!(skolem.instance.len(), 3);
        let result = core_of_with(&skolem.instance, &CoreConfig::default());
        assert!(!result.gave_up);
        assert_eq!(result.core.len(), 2);
        assert!(result.core.nulls().is_empty());
        assert!(is_core(&result.core));
    }

    #[test]
    fn chase_variants_have_homomorphically_equivalent_results_with_equal_core_sizes() {
        let db = parse_database("person(alice).").unwrap();
        let p = parse_program("person(X) -> hasFather(X, Y). hasFather(X, Y) -> sameAs(Y, Y).")
            .unwrap();
        let config = ChaseConfig::default();
        let restricted = restricted_chase(&db, &p, &config).instance;
        let skolem = skolem_chase(&db, &p, &config).instance;
        let oblivious = oblivious_chase(&db, &p, &config).instance;
        let sizes: Vec<usize> = [&restricted, &skolem, &oblivious]
            .iter()
            .map(|i| core_of(i).len())
            .collect();
        assert_eq!(sizes[0], sizes[1]);
        assert_eq!(sizes[1], sizes[2]);
        // And the restricted-chase result is already a core here.
        assert!(is_core(&restricted));
    }

    #[test]
    fn the_core_is_a_homomorphic_image_of_the_original_instance() {
        let db = parse_database("knows(alice, bo). knows(alice, carol).").unwrap();
        let p = parse_program("knows(X, Y) -> friend(X, Z), friend(Z, X).").unwrap();
        let config = ChaseConfig::default();
        let oblivious = oblivious_chase(&db, &p, &config).instance;
        let core = core_of(&oblivious);
        assert!(core.len() <= oblivious.len());
        // Core ⊆ original and original → core: check the latter by mapping
        // the frozen original into the core.
        let frozen: Vec<ntgd_core::Atom> = frozen_literals(&oblivious)
            .into_iter()
            .map(|l| l.atom().clone())
            .collect();
        assert!(exists_atom_homomorphism(
            &frozen,
            &core,
            &Substitution::new()
        ));
    }

    #[test]
    fn oversized_instances_are_returned_unchanged() {
        let db = parse_database("person(alice). hasFather(alice, bob).").unwrap();
        let p = parse_program("person(X) -> hasFather(X, Y).").unwrap();
        let skolem = skolem_chase(&db, &p, &ChaseConfig::default());
        let result = core_of_with(&skolem.instance, &CoreConfig { max_atoms: 1 });
        assert!(result.gave_up);
        assert_eq!(result.core.len(), skolem.instance.len());
    }

    #[test]
    fn symmetric_nulls_collapse_onto_each_other() {
        // Two interchangeable nulls generated for the same person collapse to
        // one in the core.
        let db = parse_database("p(a).").unwrap();
        let program = parse_program("p(X) -> r(X, Y). p(X) -> r(X, Z).").unwrap();
        let oblivious = oblivious_chase(&db, &program, &ChaseConfig::default()).instance;
        assert_eq!(oblivious.len(), 3);
        let core = core_of(&oblivious);
        assert_eq!(core.len(), 2);
    }
}
