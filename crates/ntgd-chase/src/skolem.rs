//! The Skolem (a.k.a. semi-oblivious) chase.
//!
//! The Skolem chase is the chase variant that mirrors Skolemization: for each
//! rule `σ` and each binding of its *frontier* variables, the existential
//! variables of `σ` receive a fixed witness (here: memoised labelled nulls,
//! playing the role of the Skolem terms `f_{σ,Z}(frontier)`), and the
//! corresponding head atoms are added exactly once.  It sits strictly between
//! the restricted chase (which skips triggers whose head is already
//! satisfied) and the oblivious chase (which distinguishes triggers by the
//! full body binding):
//!
//! `restricted ⊆ skolem ⊆ oblivious`   (as sets of atoms, up to the choice of
//! null names).
//!
//! The Skolem chase is the operational counterpart of the LP approach of
//! Section 3.1: its result coincides (up to renaming the memoised nulls into
//! Skolem terms) with the least model of the Skolemised positive program, so
//! the tests of this module double as a sanity check of `ntgd-lp`'s
//! Skolemizer.

use std::collections::{HashMap, VecDeque};

use ntgd_core::{CompiledRuleSet, Database, NullFactory, Program, Term};

use crate::restricted::{ChaseConfig, ChaseOutcome, ChaseResult};
use crate::trigger::triggers_from_compiled;

/// Memo key of a Skolem witness: rule index plus frontier binding.
type WitnessKey = (usize, Vec<(Term, Term)>);

/// Runs the Skolem (semi-oblivious) chase of `database` with the positive
/// part of `program`.
///
/// Like the restricted and oblivious variants, the worklist is extended
/// semi-naively: after an application only the triggers whose body uses a
/// newly derived atom are discovered ([`triggers_from_compiled`], over rule
/// plans compiled once per run).  Large rounds fan out over the scoped
/// worker pool with a deterministic merge, so the memoised witnesses (and
/// hence the null names) are identical at every thread count.
pub fn skolem_chase(database: &Database, program: &Program, config: &ChaseConfig) -> ChaseResult {
    let positive = program.positive_part();
    let mut instance = database.to_interpretation();
    let plans = CompiledRuleSet::from_program(&positive, &instance);
    let mut nulls = NullFactory::new();
    let mut steps = 0usize;
    // (rule, frontier binding) → the memoised witnesses for the rule's
    // existential variables, in `existential_variables()` order.
    let mut witnesses: HashMap<WitnessKey, Vec<Term>> = HashMap::new();
    let mut pending: VecDeque<_> = triggers_from_compiled(&plans, &instance, 0).into();

    loop {
        let Some(trigger) = pending.pop_front() else {
            return ChaseResult {
                instance,
                steps,
                nulls_created: nulls.issued(),
                outcome: ChaseOutcome::Terminated,
            };
        };
        let rule = &positive.rules()[trigger.rule_index];
        let frontier_key: Vec<(Term, Term)> = rule
            .frontier_variables()
            .into_iter()
            .map(|v| {
                let t = Term::Var(v);
                (t, trigger.homomorphism.apply_term(&t))
            })
            .collect();
        let key = (trigger.rule_index, frontier_key);
        let existentials: Vec<_> = rule.existential_variables().into_iter().collect();
        let witness_terms = witnesses
            .entry(key)
            .or_insert_with(|| existentials.iter().map(|_| nulls.fresh()).collect())
            .clone();

        let mut homomorphism = trigger.homomorphism.clone();
        for (variable, witness) in existentials.iter().zip(witness_terms) {
            homomorphism.bind(Term::Var(*variable), witness);
        }
        let watermark = instance.len();
        let mut new_atom = false;
        for atom in rule.head() {
            if instance.insert(homomorphism.apply_atom(atom)) {
                new_atom = true;
            }
        }
        if new_atom {
            steps += 1;
            if config.max_steps.is_some_and(|max| steps >= max) {
                return ChaseResult {
                    instance,
                    steps,
                    nulls_created: nulls.issued(),
                    outcome: ChaseOutcome::StepLimitReached,
                };
            }
            pending.extend(triggers_from_compiled(&plans, &instance, watermark));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oblivious::oblivious_chase;
    use crate::restricted::restricted_chase;
    use ntgd_parser::{parse_database, parse_program, parse_query};

    #[test]
    fn positive_datalog_programs_reach_the_least_model() {
        let db = parse_database("edge(a, b). edge(b, c). edge(c, d).").unwrap();
        let p = parse_program("edge(X, Y), edge(Y, Z) -> edge(X, Z).").unwrap();
        let result = skolem_chase(&db, &p, &ChaseConfig::default());
        assert!(result.terminated());
        assert_eq!(result.nulls_created, 0);
        // 3 base edges + 3 derived (a-c, b-d, a-d).
        assert_eq!(result.instance.len(), 6);
    }

    #[test]
    fn witnesses_are_memoised_per_frontier_binding() {
        // The same person triggers the father rule through two different
        // bodies (two `knows` partners), but the frontier is only X, so a
        // single null is invented.
        let db = parse_database("knows(alice, bo). knows(alice, carol).").unwrap();
        let p = parse_program("knows(X, Y) -> hasFather(X, Z).").unwrap();
        let result = skolem_chase(&db, &p, &ChaseConfig::default());
        assert!(result.terminated());
        assert_eq!(result.nulls_created, 1);
        let q = parse_query("?- hasFather(alice, Z).").unwrap();
        assert!(q.holds(&result.instance));
    }

    #[test]
    fn skolem_chase_sits_between_restricted_and_oblivious() {
        let db = parse_database("person(alice). hasFather(alice, bob).").unwrap();
        let p = parse_program("person(X) -> hasFather(X, Y). hasFather(X, Y) -> sameAs(Y, Y).")
            .unwrap();
        let config = ChaseConfig::default();
        let restricted = restricted_chase(&db, &p, &config);
        let skolem = skolem_chase(&db, &p, &config);
        let oblivious = oblivious_chase(&db, &p, &config);
        // The restricted chase reuses bob as the witness and adds nothing for
        // the first rule; the Skolem chase always invents its Skolem witness;
        // the oblivious chase here happens to coincide with the Skolem chase
        // because frontier and universal variables agree for both rules.
        assert!(restricted.instance.len() <= skolem.instance.len());
        assert!(skolem.instance.len() <= oblivious.instance.len());
        assert_eq!(restricted.nulls_created, 0);
        assert_eq!(skolem.nulls_created, 1);
    }

    #[test]
    fn the_skolem_chase_of_a_weakly_acyclic_program_terminates() {
        let db = parse_database("emp(ann). emp(bo). dept(hr).").unwrap();
        let p = parse_program("emp(X) -> worksIn(X, D). worksIn(X, D) -> unit(D).").unwrap();
        let result = skolem_chase(&db, &p, &ChaseConfig::default());
        assert!(result.terminated());
        assert_eq!(result.nulls_created, 2);
        let q = parse_query("?- worksIn(ann, D), unit(D).").unwrap();
        assert!(q.holds(&result.instance));
    }

    #[test]
    fn non_terminating_programs_hit_the_step_limit() {
        let db = parse_database("person(alice).").unwrap();
        let p = parse_program("person(X) -> parent(X, Y), person(Y).").unwrap();
        let result = skolem_chase(&db, &p, &ChaseConfig::with_max_steps(25));
        assert_eq!(result.outcome, ChaseOutcome::StepLimitReached);
        assert!(result.steps >= 25);
    }

    #[test]
    fn negative_literals_are_ignored() {
        let db = parse_database("p(a).").unwrap();
        let p = parse_program("p(X), not q(X) -> r(X).").unwrap();
        let result = skolem_chase(&db, &p, &ChaseConfig::default());
        assert!(result.terminated());
        let q = parse_query("?- r(a).").unwrap();
        assert!(q.holds(&result.instance));
    }
}
