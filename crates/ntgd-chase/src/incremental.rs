//! A **resumable, incremental** chase for long-lived reasoning sessions.
//!
//! The batch chases of this crate ([`restricted_chase`], [`skolem_chase`],
//! [`oblivious_chase`]) build an instance, run to fixpoint and return it;
//! asserting one more fact means re-chasing from scratch.  A reasoning
//! *session* instead keeps the chase state alive between assertions:
//!
//! * [`IncrementalChase::assert_facts`] inserts a batch of new facts and
//!   **re-chases incrementally**: the new facts seed the semi-naive delta
//!   worklist ([`triggers_from_compiled`] with the pre-assert arena length
//!   as watermark), so only the delta neighbourhood is matched — never the
//!   whole instance, and never from scratch.  Because the pre-assert state
//!   is a fixpoint, delta triggers are exactly the new triggers.
//! * [`IncrementalChase::mark`] captures an [`EpochMark`] (arena watermark
//!   plus witness-memo length); [`IncrementalChase::retract_to`] rolls the
//!   session back to a mark in `O(atoms retracted)` by truncating the arena
//!   ([`Interpretation::truncate`]) and un-memoising the witnesses invented
//!   since — ids, indexes and memos of surviving epochs are untouched.
//!
//! # Which chase, and why the result is batching-invariant
//!
//! The incremental chase uses **Skolem (semi-oblivious) semantics** with
//! witnesses memoised per `(rule, frontier binding)`, like [`skolem_chase`].
//! This is a deliberate choice: the *restricted* chase is order-dependent —
//! whether a trigger is applied depends on which witnesses happen to exist
//! already, so chasing `D₁` to fixpoint before seeing `D₂` can produce a
//! different (non-isomorphic!) instance than chasing `D₁ ∪ D₂` outright,
//! which would make a session's answers depend on how its history was
//! batched.  The Skolem chase result is the least fixpoint of the
//! Skolemised positive program and therefore a function of the accumulated
//! fact **set** alone.
//!
//! On top of that, witnesses are named **canonically**: the null invented
//! for existential variable `i` of rule `r` under frontier binding `t̄` is
//! `_n<h>` where `h` is a 64-bit FNV-1a hash of `(r, i, t̄)` (nulls inside
//! `t̄` hash by their own canonical identifier, so naming is well-founded).
//! Unlike a sequential [`NullFactory`](ntgd_core::NullFactory), the name
//! does not depend on *when* the witness was first needed.  Together:
//!
//! > any split of a database into a sequence of `assert_facts` batches
//! > yields the **same set of atoms, null names included**, and hence
//! > identical query answers, as a from-scratch run that asserts everything
//! > in one batch
//!
//! — the equivalence property the `ntgd-server` session tests assert.  (The
//! arena *order* necessarily reflects the batching — an arena is append-only
//! — but for a fixed batch sequence it is bit-identical at every thread
//! count, per the `ntgd_core::parallel` determinism contract.)  Hash
//! collisions between distinct witness keys are detected and resolved by
//! deterministic re-salting; a collision would have to defeat a 64-bit hash
//! to perturb naming, which no realistic session size approaches.
//!
//! [`restricted_chase`]: crate::restricted::restricted_chase
//! [`skolem_chase`]: crate::skolem::skolem_chase
//! [`oblivious_chase`]: crate::oblivious::oblivious_chase

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use ntgd_core::{
    obs, Atom, CompiledRuleSet, Interpretation, InterpretationBase, NullId, Program, Symbol, Term,
};

use crate::restricted::ChaseConfig;
use crate::trigger::triggers_from_compiled;

/// Chase hot-loop telemetry, batched per worklist drain so the per-trigger
/// path stays atomic-free: round count, triggers applied, and how the
/// witness memo split between hits (an existing Skolem witness reused) and
/// misses (fresh labelled nulls minted).
static CHASE_ROUNDS: obs::Counter = obs::Counter::new("chase.rounds");
static CHASE_TRIGGERS: obs::Counter = obs::Counter::new("chase.triggers");
static CHASE_MEMO_HITS: obs::Counter = obs::Counter::new("chase.witness_memo_hits");
static CHASE_MEMO_MISSES: obs::Counter = obs::Counter::new("chase.witness_memo_misses");

/// Locally accumulated [`drain`](IncrementalChase::drain) tallies, flushed
/// to the process-wide counters once per round.
#[derive(Default)]
struct DrainTallies {
    triggers: u64,
    memo_hits: u64,
    memo_misses: u64,
}

/// Memo key of a Skolem witness: rule index plus the values of the rule's
/// frontier variables (in `frontier_variables()` order).
type WitnessKey = (usize, Vec<Term>);

/// A rollback point of an [`IncrementalChase`]: everything needed to undo
/// the assertions made after it was taken.
///
/// Marks are plain data and only meaningful for the chase that issued them;
/// rolling back to a mark invalidates every mark taken later.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochMark {
    /// Arena watermark: `instance.len()` when the mark was taken.
    arena_len: usize,
    /// Witness-memo watermark: number of memoised witness keys.
    witnesses: usize,
    /// Trigger applications performed so far.
    steps: usize,
}

impl EpochMark {
    /// The arena length captured by this mark.
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// The number of memoised witness keys captured by this mark.
    pub fn witnesses(&self) -> usize {
        self.witnesses
    }

    /// The trigger applications performed when this mark was taken.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

/// Summary of one successful [`IncrementalChase::assert_facts`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AssertSummary {
    /// Facts from the batch that were actually new.
    pub added_facts: usize,
    /// Atoms derived by the incremental re-chase.
    pub derived: usize,
    /// Trigger applications performed by the re-chase.
    pub steps: usize,
}

/// The error of an [`IncrementalChase::assert_facts`] call whose re-chase
/// exceeded the configured step budget.  The assertion is rolled back
/// entirely (asserts are transactional), so the session stays at its last
/// fixpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepLimitExceeded {
    /// The per-assert step budget that was exhausted.
    pub max_steps: usize,
}

impl std::fmt::Display for StepLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "incremental re-chase exceeded {} steps; assertion rolled back",
            self.max_steps
        )
    }
}

impl std::error::Error for StepLimitExceeded {}

/// A frozen chase fixpoint, shareable between sessions through an [`Arc`]:
/// the chased instance (as an [`InterpretationBase`]), the compiled rule
/// plans, and the witness memo / null-owner maps accumulated up to the
/// freeze.  Produced by [`IncrementalChase::freeze`], consumed by
/// [`IncrementalChase::fork`], which layers a private overlay chase on top
/// in O(1).
#[derive(Debug)]
pub struct ChaseBase {
    /// The positive part of the loaded program.
    positive: Arc<Program>,
    /// Rule plans, compiled once when the base was first built.
    plans: Arc<CompiledRuleSet>,
    /// The frozen chased instance (a fixpoint).
    instance: Arc<InterpretationBase>,
    /// Witness memo at the freeze.
    witnesses: HashMap<WitnessKey, Vec<Term>>,
    /// Number of memoised witness keys at the freeze (the absolute witness
    /// watermark forked overlays count from).
    witness_count: usize,
    /// Null-owner map at the freeze.
    null_owner: HashMap<NullId, (WitnessKey, usize)>,
    /// Trigger applications performed up to the freeze.
    steps: usize,
}

impl ChaseBase {
    /// The frozen chased instance.
    pub fn instance(&self) -> &Arc<InterpretationBase> {
        &self.instance
    }

    /// The compiled rule plans shared by every fork.
    pub fn plans(&self) -> &Arc<CompiledRuleSet> {
        &self.plans
    }

    /// The positive program driving the chase.
    pub fn program(&self) -> &Arc<Program> {
        &self.positive
    }

    /// Trigger applications performed up to the freeze.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

/// A resumable Skolem chase whose worklists, witness memo and compiled rule
/// plans stay alive between fact assertions.  See the module documentation
/// for the semantics.
#[derive(Debug)]
pub struct IncrementalChase {
    /// The positive part of the loaded program (the chase of `Σ⁺`).
    positive: Arc<Program>,
    /// Rule plans, compiled once when the program is loaded (shared with
    /// the base and its other forks when forked).
    plans: Arc<CompiledRuleSet>,
    /// The shared frozen prefix of the chase, if this session was forked.
    base: Option<Arc<ChaseBase>>,
    /// The chased instance: asserted facts plus everything derived.  Holds
    /// the base's frozen arena as its base segment when forked.
    instance: Interpretation,
    /// `(rule, frontier)` → memoised witness terms, in
    /// `existential_variables()` order.  Overlay-local when forked; lookups
    /// chain to the base memo.
    witnesses: HashMap<WitnessKey, Vec<Term>>,
    /// Witness keys in creation order (the rollback log; overlay-local).
    witness_log: Vec<WitnessKey>,
    /// Canonical null id → owning `(key, existential index)`, for collision
    /// detection.  Overlay-local when forked.
    null_owner: HashMap<NullId, (WitnessKey, usize)>,
    /// Trigger applications performed over the session's lifetime (absolute:
    /// starts at the base's step count when forked).
    steps: usize,
    /// Per-assert chase configuration (step budget).
    config: ChaseConfig,
}

impl IncrementalChase {
    /// Creates a session chase for the positive part of `program` and runs
    /// the initial chase of the **empty** database (rules with empty bodies
    /// fire here), so the state is a fixpoint before the first assert.
    pub fn new(
        program: &Program,
        config: ChaseConfig,
    ) -> Result<IncrementalChase, StepLimitExceeded> {
        let positive = program.positive_part();
        let instance = Interpretation::new();
        let plans = CompiledRuleSet::from_program(&positive, &instance);
        let mut chase = IncrementalChase {
            positive: Arc::new(positive),
            plans: Arc::new(plans),
            base: None,
            instance,
            witnesses: HashMap::new(),
            witness_log: Vec::new(),
            null_owner: HashMap::new(),
            steps: 0,
            config,
        };
        let seed = triggers_from_compiled(&chase.plans, &chase.instance, 0);
        chase.drain(seed.into())?;
        Ok(chase)
    }

    /// Freezes this chase into an immutable shareable [`ChaseBase`]: the
    /// instance arena, compiled plans, witness memo and null-owner map all
    /// move behind the `Arc` (no copy for an unforked chase).  The chase
    /// must be at a fixpoint, which it always is outside `assert_facts`.
    pub fn freeze(self) -> Arc<ChaseBase> {
        let IncrementalChase {
            positive,
            plans,
            base,
            instance,
            witnesses,
            witness_log,
            null_owner,
            steps,
            config: _,
        } = self;
        match base {
            None => Arc::new(ChaseBase {
                positive,
                plans,
                instance: instance.freeze(),
                witness_count: witness_log.len(),
                witnesses,
                null_owner,
                steps,
            }),
            Some(prior) => {
                let mut all_witnesses = prior.witnesses.clone();
                all_witnesses.extend(witnesses);
                let mut all_owner = prior.null_owner.clone();
                all_owner.extend(null_owner);
                Arc::new(ChaseBase {
                    positive,
                    plans,
                    instance: instance.freeze(),
                    witness_count: prior.witness_count + witness_log.len(),
                    witnesses: all_witnesses,
                    null_owner: all_owner,
                    steps,
                })
            }
        }
    }

    /// Forks a frozen base in O(1): the new session shares the base's
    /// instance arena, plans and witness memo, and chases only its private
    /// fact delta on top.  Observationally identical to a from-scratch
    /// session that asserted the base's facts first.
    pub fn fork(base: &Arc<ChaseBase>, config: ChaseConfig) -> IncrementalChase {
        IncrementalChase {
            positive: Arc::clone(&base.positive),
            plans: Arc::clone(&base.plans),
            instance: Interpretation::fork(&base.instance),
            base: Some(Arc::clone(base)),
            witnesses: HashMap::new(),
            witness_log: Vec::new(),
            null_owner: HashMap::new(),
            steps: base.steps,
            config,
        }
    }

    /// The shared base this chase was forked from, if any.
    pub fn base(&self) -> Option<&Arc<ChaseBase>> {
        self.base.as_ref()
    }

    /// The chased instance (facts plus derived atoms), always at a fixpoint.
    pub fn instance(&self) -> &Interpretation {
        &self.instance
    }

    /// The atoms asserted or derived since a mark was taken (the arena
    /// suffix above the mark's watermark), in insertion order.  This is the
    /// session's chase *delta*: embedders that maintain derived state of
    /// their own (caches, materialised views, the incremental `MODELS`
    /// grounding of `ntgd-sms`) seed their semi-naive worklists from it
    /// instead of rescanning the instance.
    pub fn atoms_since<'a>(&'a self, mark: &EpochMark) -> impl Iterator<Item = &'a Atom> + 'a {
        self.instance.atoms_from(mark.arena_len)
    }

    /// The positive program driving the chase.
    pub fn program(&self) -> &Program {
        &self.positive
    }

    /// Trigger applications performed over the session's lifetime (rolled
    /// back by [`IncrementalChase::retract_to`]).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Number of live memoised witnesses (canonical nulls invented and not
    /// retracted), including those of the shared base when forked.
    pub fn nulls_created(&self) -> u64 {
        let overlay: u64 = self
            .witnesses
            .values()
            .map(|terms| terms.len() as u64)
            .sum();
        let base: u64 = self
            .base
            .as_ref()
            .map(|b| b.witnesses.values().map(|terms| terms.len() as u64).sum())
            .unwrap_or(0);
        base + overlay
    }

    /// Number of memoised witness keys frozen into the shared base (0 when
    /// not forked).
    fn base_witness_count(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.witness_count)
    }

    /// Captures a rollback point for [`IncrementalChase::retract_to`].
    pub fn mark(&self) -> EpochMark {
        EpochMark {
            arena_len: self.instance.len(),
            witnesses: self.base_witness_count() + self.witness_log.len(),
            steps: self.steps,
        }
    }

    /// Rolls the session back to a previously captured mark: the arena is
    /// truncated to the mark's watermark and the witnesses memoised since
    /// are forgotten, in time proportional to what is being retracted.
    ///
    /// # Panics
    ///
    /// Panics if the mark is from the future (e.g. from a later state that
    /// was itself rolled back and re-grown differently), or if it lies below
    /// the fork watermark of a forked session (the shared base is frozen).
    pub fn retract_to(&mut self, mark: &EpochMark) {
        let base_witnesses = self.base_witness_count();
        assert!(
            mark.witnesses >= base_witnesses
                && mark.steps >= self.base.as_ref().map_or(0, |b| b.steps),
            "epoch mark lies below the fork watermark of the shared base"
        );
        let overlay_witnesses = mark.witnesses - base_witnesses;
        assert!(
            mark.arena_len <= self.instance.len() && overlay_witnesses <= self.witness_log.len(),
            "epoch mark does not precede the current state"
        );
        self.instance.truncate(mark.arena_len);
        for key in self.witness_log.drain(overlay_witnesses..) {
            if let Some(terms) = self.witnesses.remove(&key) {
                for term in terms {
                    if let Term::Null(id) = term {
                        self.null_owner.remove(&id);
                    }
                }
            }
        }
        self.steps = mark.steps;
    }

    /// Asserts a batch of ground facts and re-chases incrementally: the new
    /// facts seed the semi-naive delta worklist, so matching cost is
    /// proportional to the delta neighbourhood, not the instance.
    ///
    /// The call is **transactional**: if the re-chase exceeds the configured
    /// per-assert step budget, the whole batch (facts and derivations) is
    /// rolled back and the session stays at its previous fixpoint.
    ///
    /// # Panics
    ///
    /// Panics if a fact contains a variable.
    pub fn assert_facts<I>(&mut self, facts: I) -> Result<AssertSummary, StepLimitExceeded>
    where
        I: IntoIterator<Item = Atom>,
    {
        let mark = self.mark();
        let watermark = self.instance.len();
        let mut added_facts = 0usize;
        for fact in facts {
            if self.instance.insert(fact) {
                added_facts += 1;
            }
        }
        let pending: VecDeque<_> =
            triggers_from_compiled(&self.plans, &self.instance, watermark).into();
        if let Err(limit) = self.drain(pending) {
            self.retract_to(&mark);
            return Err(limit);
        }
        Ok(AssertSummary {
            added_facts,
            derived: self.instance.len() - watermark - added_facts,
            steps: self.steps - mark.steps,
        })
    }

    /// Runs the Skolem-chase worklist to fixpoint, bounded by the per-call
    /// step budget.  On `Err` the caller is responsible for rolling back.
    fn drain(
        &mut self,
        pending: VecDeque<crate::trigger::Trigger>,
    ) -> Result<(), StepLimitExceeded> {
        let _round = obs::span("chase.round");
        CHASE_ROUNDS.incr();
        let mut tallies = DrainTallies::default();
        let result = self.drain_inner(pending, &mut tallies);
        CHASE_TRIGGERS.add(tallies.triggers);
        CHASE_MEMO_HITS.add(tallies.memo_hits);
        CHASE_MEMO_MISSES.add(tallies.memo_misses);
        result
    }

    fn drain_inner(
        &mut self,
        mut pending: VecDeque<crate::trigger::Trigger>,
        tallies: &mut DrainTallies,
    ) -> Result<(), StepLimitExceeded> {
        let start = self.steps;
        while let Some(trigger) = pending.pop_front() {
            tallies.triggers += 1;
            let rule = &self.positive.rules()[trigger.rule_index];
            let frontier: Vec<Term> = rule
                .frontier_variables()
                .into_iter()
                .map(|v| trigger.homomorphism.apply_term(&Term::Var(v)))
                .collect();
            let key: WitnessKey = (trigger.rule_index, frontier);
            let existentials: Vec<Symbol> = rule.existential_variables().into_iter().collect();
            let memoised = self
                .witnesses
                .get(&key)
                .or_else(|| self.base.as_ref().and_then(|b| b.witnesses.get(&key)));
            let witness_terms = match memoised {
                Some(terms) => {
                    tallies.memo_hits += 1;
                    terms.clone()
                }
                None => {
                    tallies.memo_misses += 1;
                    let base_owners = self.base.as_ref().map(|b| &b.null_owner);
                    let terms: Vec<Term> = (0..existentials.len())
                        .map(|index| {
                            Term::Null(claim_null_id(
                                base_owners,
                                &mut self.null_owner,
                                &key,
                                index,
                            ))
                        })
                        .collect();
                    self.witness_log.push(key.clone());
                    self.witnesses.insert(key, terms.clone());
                    terms
                }
            };
            let mut homomorphism = trigger.homomorphism.clone();
            for (variable, witness) in existentials.iter().zip(witness_terms) {
                homomorphism.bind(Term::Var(*variable), witness);
            }
            let head_watermark = self.instance.len();
            let mut new_atom = false;
            for atom in rule.head() {
                if self.instance.insert(homomorphism.apply_atom(atom)) {
                    new_atom = true;
                }
            }
            if new_atom {
                self.steps += 1;
                if let Some(max_steps) = self.config.max_steps {
                    if self.steps - start >= max_steps {
                        return Err(StepLimitExceeded { max_steps });
                    }
                }
                pending.extend(triggers_from_compiled(
                    &self.plans,
                    &self.instance,
                    head_watermark,
                ));
            }
        }
        Ok(())
    }
}

/// The canonical null id of `(key, existential index)`: a 64-bit FNV-1a
/// hash of the key's content, re-salted deterministically on (cosmically
/// unlikely) collision with a different live witness.  Ownership is checked
/// against the frozen base's map first (forked sessions must not re-claim a
/// base null for a different witness), then the overlay's.
fn claim_null_id(
    base_owners: Option<&HashMap<NullId, (WitnessKey, usize)>>,
    owners: &mut HashMap<NullId, (WitnessKey, usize)>,
    key: &WitnessKey,
    index: usize,
) -> NullId {
    let mut salt = 0u64;
    loop {
        let id = canonical_null_id(key, index, salt);
        let owner = owners
            .get(&id)
            .or_else(|| base_owners.and_then(|b| b.get(&id)));
        match owner {
            Some((owner_key, owner_index)) if owner_key == key && *owner_index == index => {
                return id;
            }
            Some(_) => salt += 1,
            None => {
                owners.insert(id, (key.clone(), index));
                return id;
            }
        }
    }
}

/// FNV-1a over the stable content of a witness key: rule index, existential
/// index, salt and the frontier terms (constants by name, nulls by their own
/// canonical id).
fn canonical_null_id(key: &WitnessKey, index: usize, salt: u64) -> NullId {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    };
    for byte in (key.0 as u64)
        .to_le_bytes()
        .into_iter()
        .chain((index as u64).to_le_bytes())
        .chain(salt.to_le_bytes())
    {
        eat(byte);
    }
    for term in &key.1 {
        match term {
            Term::Const(symbol) => {
                eat(0x01);
                for byte in symbol.as_str().bytes() {
                    eat(byte);
                }
                eat(0x00);
            }
            Term::Null(id) => {
                eat(0x02);
                for byte in id.to_le_bytes() {
                    eat(byte);
                }
            }
            Term::Var(_) => unreachable!("frontier bindings are ground"),
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skolem::skolem_chase;
    use ntgd_core::{atom, cst};
    use ntgd_parser::{parse_database, parse_program, parse_query};

    fn facts(text: &str) -> Vec<Atom> {
        parse_database(text).unwrap().facts().cloned().collect()
    }

    #[test]
    fn incremental_chase_reaches_the_skolem_fixpoint() {
        let program =
            parse_program("person(X) -> hasFather(X, Y). hasFather(X, Y) -> sameAs(Y, Y).")
                .unwrap();
        let mut chase = IncrementalChase::new(&program, ChaseConfig::with_max_steps(50)).unwrap();
        let summary = chase.assert_facts(facts("person(alice).")).unwrap();
        assert_eq!(summary.added_facts, 1);
        assert_eq!(summary.derived, 2, "hasFather + sameAs");
        let query = parse_query("?- hasFather(alice, Y), sameAs(Y, Y).").unwrap();
        assert!(query.holds(chase.instance()));
    }

    #[test]
    fn diverging_asserts_are_rolled_back_transactionally() {
        let program = parse_program("person(X) -> parent(X, Y), person(Y).").unwrap();
        let mut chase = IncrementalChase::new(&program, ChaseConfig::with_max_steps(25)).unwrap();
        let before = chase.mark();
        let err = chase.assert_facts(facts("person(adam).")).unwrap_err();
        assert_eq!(err.max_steps, 25);
        // The failed assert left no trace: facts, derivations and witnesses
        // are all rolled back.
        assert_eq!(chase.mark(), before);
        assert!(chase.instance().is_empty());
        assert_eq!(chase.nulls_created(), 0);
    }

    #[test]
    fn split_asserts_equal_the_single_batch_fixpoint() {
        let program = parse_program(
            "e(X, Y) -> n(X). e(X, Y) -> n(Y). n(X) -> l(X, Z). e(X, Y), e(Y, Z) -> e(X, Z).",
        )
        .unwrap();
        let config = ChaseConfig::default();
        let all = "e(a, b). e(b, c). e(c, d).";
        let mut single = IncrementalChase::new(&program, config.clone()).unwrap();
        single.assert_facts(facts(all)).unwrap();
        let mut split = IncrementalChase::new(&program, config.clone()).unwrap();
        split.assert_facts(facts("e(c, d).")).unwrap();
        split.assert_facts(facts("e(a, b).")).unwrap();
        split.assert_facts(facts("e(b, c).")).unwrap();
        // Same atom set — canonical null names included.
        assert_eq!(
            single.instance().sorted_atoms(),
            split.instance().sorted_atoms()
        );
        assert_eq!(single.nulls_created(), split.nulls_created());
    }

    #[test]
    fn incremental_chase_agrees_with_the_batch_skolem_chase() {
        let database = parse_database("emp(ann). emp(bo). dept(hr).").unwrap();
        let program = parse_program("emp(X) -> worksIn(X, D). worksIn(X, D) -> unit(D).").unwrap();
        let batch = skolem_chase(&database, &program, &ChaseConfig::default());
        let mut incremental = IncrementalChase::new(&program, ChaseConfig::default()).unwrap();
        incremental.assert_facts(database.facts().cloned()).unwrap();
        // Same instance up to null renaming: sizes, witness counts and
        // null-free query answers coincide with the existing batch engine.
        assert_eq!(incremental.instance().len(), batch.instance.len());
        assert_eq!(incremental.nulls_created(), batch.nulls_created);
        let query = parse_query("?- worksIn(ann, D), unit(D).").unwrap();
        assert!(query.holds(incremental.instance()));
    }

    #[test]
    fn retract_to_restores_an_earlier_epoch_exactly() {
        let program = parse_program("p(X) -> q(X, Y). q(X, Y) -> r(Y).").unwrap();
        let mut chase = IncrementalChase::new(&program, ChaseConfig::default()).unwrap();
        chase.assert_facts(facts("p(a).")).unwrap();
        let mark = chase.mark();
        let frozen: Vec<Atom> = chase.instance().atoms().cloned().collect();
        chase.assert_facts(facts("p(b). p(c).")).unwrap();
        assert!(chase.instance().len() > frozen.len());
        chase.retract_to(&mark);
        assert_eq!(
            chase.instance().atoms().cloned().collect::<Vec<_>>(),
            frozen
        );
        assert_eq!(chase.mark(), mark);
        // Re-growing after a retract reaches the same state as never having
        // retracted a sibling batch: canonical naming is history-free.
        let mut fresh = IncrementalChase::new(&program, ChaseConfig::default()).unwrap();
        fresh.assert_facts(facts("p(a).")).unwrap();
        fresh.assert_facts(facts("p(d).")).unwrap();
        chase.assert_facts(facts("p(d).")).unwrap();
        assert_eq!(
            chase.instance().sorted_atoms(),
            fresh.instance().sorted_atoms()
        );
    }

    #[test]
    fn marks_expose_their_watermarks_and_deltas() {
        let program = parse_program("p(X) -> q(X, Y). q(X, Y) -> r(Y).").unwrap();
        let mut chase = IncrementalChase::new(&program, ChaseConfig::default()).unwrap();
        chase.assert_facts(facts("p(a).")).unwrap();
        let mark = chase.mark();
        assert_eq!(mark.arena_len(), chase.instance().len());
        // One (rule, frontier) entry per applied trigger — including the
        // existential-free rule, whose memoised witness list is empty.
        assert_eq!(mark.witnesses(), 2);
        assert_eq!(mark.steps(), chase.steps());
        assert_eq!(chase.atoms_since(&mark).count(), 0);
        chase.assert_facts(facts("p(b).")).unwrap();
        let delta: Vec<Atom> = chase.atoms_since(&mark).cloned().collect();
        assert_eq!(delta.len(), chase.instance().len() - mark.arena_len());
        assert!(delta.contains(&atom("p", vec![cst("b")])));
        // The delta is exactly the suffix the next epoch would retract.
        chase.retract_to(&mark);
        assert_eq!(chase.atoms_since(&mark).count(), 0);
    }

    #[test]
    fn duplicate_facts_and_derived_facts_are_no_ops() {
        let program = parse_program("p(X) -> q(X).").unwrap();
        let mut chase = IncrementalChase::new(&program, ChaseConfig::default()).unwrap();
        chase.assert_facts(facts("p(a).")).unwrap();
        let len = chase.instance().len();
        let summary = chase
            .assert_facts(vec![atom("p", vec![cst("a")]), atom("q", vec![cst("a")])])
            .unwrap();
        assert_eq!(summary.added_facts, 0);
        assert_eq!(summary.derived, 0);
        assert_eq!(chase.instance().len(), len);
    }

    #[test]
    fn empty_body_rules_fire_in_the_initial_chase() {
        let program = parse_program("-> axiom(c).").unwrap();
        let chase = IncrementalChase::new(&program, ChaseConfig::default()).unwrap();
        assert!(chase.instance().contains(&atom("axiom", vec![cst("c")])));
    }

    #[test]
    fn forked_chase_equals_a_from_scratch_session() {
        let program = parse_program(
            "e(X, Y) -> n(X). e(X, Y) -> n(Y). n(X) -> l(X, Z). e(X, Y), e(Y, Z) -> e(X, Z).",
        )
        .unwrap();
        let config = ChaseConfig::default();
        let mut builder = IncrementalChase::new(&program, config.clone()).unwrap();
        builder.assert_facts(facts("e(a, b). e(b, c).")).unwrap();
        let base = builder.freeze();
        // A fork that asserts a delta must match a private from-scratch
        // session asserting base facts then the delta — same atom set,
        // canonical null names included, and same counters.
        let mut fork = IncrementalChase::fork(&base, config.clone());
        fork.assert_facts(facts("e(c, d).")).unwrap();
        let mut private = IncrementalChase::new(&program, config.clone()).unwrap();
        private.assert_facts(facts("e(a, b). e(b, c).")).unwrap();
        private.assert_facts(facts("e(c, d).")).unwrap();
        assert_eq!(
            fork.instance().sorted_atoms(),
            private.instance().sorted_atoms()
        );
        assert_eq!(fork.nulls_created(), private.nulls_created());
        assert_eq!(fork.steps(), private.steps());
        assert_eq!(fork.instance().len(), private.instance().len());
        // The arena order is also identical: both chase the delta from the
        // same fixpoint with the same plans.
        assert_eq!(
            fork.instance().atoms().cloned().collect::<Vec<_>>(),
            private.instance().atoms().cloned().collect::<Vec<_>>()
        );
    }

    #[test]
    fn forks_share_the_base_and_stay_independent() {
        let program = parse_program("p(X) -> q(X, Y).").unwrap();
        let config = ChaseConfig::default();
        let mut builder = IncrementalChase::new(&program, config.clone()).unwrap();
        builder.assert_facts(facts("p(a).")).unwrap();
        let base = builder.freeze();
        let mut f1 = IncrementalChase::fork(&base, config.clone());
        let mut f2 = IncrementalChase::fork(&base, config.clone());
        assert!(f1.base().is_some());
        assert_eq!(f1.instance().base_len(), base.instance().len());
        f1.assert_facts(facts("p(b).")).unwrap();
        f2.assert_facts(facts("p(c).")).unwrap();
        assert!(f1.instance().contains(&atom("p", vec![cst("b")])));
        assert!(!f1.instance().contains(&atom("p", vec![cst("c")])));
        assert!(f2.instance().contains(&atom("p", vec![cst("c")])));
        // Both forks see the shared base atom and witness memo: asserting a
        // base fact again is a no-op.
        let summary = f1.assert_facts(facts("p(a).")).unwrap();
        assert_eq!(summary.added_facts, 0);
        assert_eq!(summary.derived, 0);
    }

    #[test]
    fn forked_retract_rolls_back_to_the_fork_watermark() {
        let program = parse_program("p(X) -> q(X, Y).").unwrap();
        let config = ChaseConfig::default();
        let mut builder = IncrementalChase::new(&program, config.clone()).unwrap();
        builder.assert_facts(facts("p(a).")).unwrap();
        let base = builder.freeze();
        let mut fork = IncrementalChase::fork(&base, config.clone());
        let fork_mark = fork.mark();
        assert_eq!(fork_mark.arena_len(), base.instance().len());
        fork.assert_facts(facts("p(b).")).unwrap();
        fork.retract_to(&fork_mark);
        assert_eq!(fork.mark(), fork_mark);
        assert_eq!(fork.instance().len(), base.instance().len());
        assert_eq!(fork.nulls_created(), 1, "base witnesses survive");
        // Transactional rollback of a diverging assert works on forks too.
        let diverging = parse_program("p(X) -> r(X, Y), p(Y).").unwrap();
        let mut seed = IncrementalChase::new(&diverging, ChaseConfig::with_max_steps(25)).unwrap();
        seed.assert_facts(facts("q(z).")).unwrap();
        let dbase = seed.freeze();
        let mut dfork = IncrementalChase::fork(&dbase, ChaseConfig::with_max_steps(25));
        let before = dfork.mark();
        dfork.assert_facts(facts("p(adam).")).unwrap_err();
        assert_eq!(dfork.mark(), before);
    }

    #[test]
    #[should_panic(expected = "below the fork watermark")]
    fn forked_retract_below_the_base_panics() {
        let program = parse_program("p(X) -> q(X, Y).").unwrap();
        let config = ChaseConfig::default();
        let mut builder = IncrementalChase::new(&program, config.clone()).unwrap();
        let early = builder.mark();
        builder.assert_facts(facts("p(a).")).unwrap();
        let base = builder.freeze();
        let mut fork = IncrementalChase::fork(&base, config);
        fork.retract_to(&early);
    }

    #[test]
    fn refreezing_a_fork_flattens_its_overlay() {
        let program = parse_program("p(X) -> q(X, Y).").unwrap();
        let config = ChaseConfig::default();
        let mut builder = IncrementalChase::new(&program, config.clone()).unwrap();
        builder.assert_facts(facts("p(a).")).unwrap();
        let base = builder.freeze();
        let mut fork = IncrementalChase::fork(&base, config.clone());
        fork.assert_facts(facts("p(b).")).unwrap();
        let refrozen = fork.freeze();
        let refork = IncrementalChase::fork(&refrozen, config.clone());
        let mut private = IncrementalChase::new(&program, config).unwrap();
        private.assert_facts(facts("p(a).")).unwrap();
        private.assert_facts(facts("p(b).")).unwrap();
        assert_eq!(
            refork.instance().sorted_atoms(),
            private.instance().sorted_atoms()
        );
        assert_eq!(refork.nulls_created(), private.nulls_created());
        assert_eq!(refork.steps(), private.steps());
    }

    #[test]
    fn canonical_null_ids_are_content_addressed() {
        let key: WitnessKey = (3, vec![cst("a"), Term::Null(7)]);
        assert_eq!(canonical_null_id(&key, 0, 0), canonical_null_id(&key, 0, 0));
        assert_ne!(canonical_null_id(&key, 0, 0), canonical_null_id(&key, 1, 0));
        assert_ne!(canonical_null_id(&key, 0, 0), canonical_null_id(&key, 0, 1));
        let other: WitnessKey = (3, vec![cst("a"), Term::Null(8)]);
        assert_ne!(
            canonical_null_id(&key, 0, 0),
            canonical_null_id(&other, 0, 0)
        );
    }
}
