//! Triggers: a rule together with a homomorphism from its (positive) body.
//!
//! Chase worklists use the `*_compiled` variants together with a
//! [`CompiledRuleSet`] built once per run, so rule bodies and heads are
//! compiled and planned exactly once; the plain variants compile one-shot
//! plans per call and are kept for tests and callers outside fixpoint loops.

use ntgd_core::{
    matcher, parallel, Atom, CompiledRuleSet, Interpretation, Ntgd, NullFactory, Program,
    Substitution, Term,
};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of restricted-chase activity checks (head-satisfaction
/// probes), for tests asserting that the head-predicate deactivation index
/// actually skips re-checks.  The counter is global (like
/// `matcher::plan_compile_count`) so checks performed on pool workers stay
/// visible.
static ACTIVITY_CHECKS: AtomicU64 = AtomicU64::new(0);

/// The number of activity checks performed so far, process-wide.
pub fn activity_check_count() -> u64 {
    ACTIVITY_CHECKS.load(Ordering::Relaxed)
}

/// A trigger `(σ, h)`: rule index and a homomorphism from the positive body of
/// `σ` into the current instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trigger {
    /// Index of the rule in the program.
    pub rule_index: usize,
    /// Homomorphism from the positive body into the instance, restricted to
    /// the rule's universal variables.
    pub homomorphism: Substitution,
}

impl Trigger {
    /// The image of the rule's negative body atoms under the trigger's
    /// homomorphism (ground atoms that must *not* appear in the final model
    /// for the trigger to be sound, in the sense of \[3\]).
    pub fn negative_images(&self, rule: &Ntgd) -> Vec<Atom> {
        rule.body_negative()
            .iter()
            .map(|a| self.homomorphism.apply_atom(a))
            .collect()
    }

    /// A canonical key identifying the trigger up to the frontier of the rule
    /// (used by the oblivious chase to apply each trigger at most once).
    pub fn key(&self, rule: &Ntgd) -> (usize, Vec<(Term, Term)>) {
        let frontier: Vec<(Term, Term)> = rule
            .universal_variables()
            .into_iter()
            .map(|v| {
                let t = Term::Var(v);
                (t, self.homomorphism.apply_term(&t))
            })
            .collect();
        (self.rule_index, frontier)
    }
}

/// All triggers of the program on the instance: homomorphisms from the
/// positive body of each rule into the instance (negative literals are
/// ignored — this is the chase of `Σ⁺`).
pub fn all_triggers(program: &Program, instance: &Interpretation) -> Vec<Trigger> {
    triggers_from(program, instance, 0)
}

/// The triggers whose body image uses at least one atom inserted at or after
/// `watermark` (an earlier value of [`Interpretation::len`]).
///
/// `triggers_from(p, i, 0)` is [`all_triggers`]; chase loops call this after
/// every trigger application with the pre-application length, so each round
/// only matches against the newly derived atoms (semi-naive evaluation).
/// Every trigger is discovered exactly once across rounds: in the round that
/// inserted the newest atom of its body image.
pub fn triggers_from(
    program: &Program,
    instance: &Interpretation,
    watermark: usize,
) -> Vec<Trigger> {
    let mut out = Vec::new();
    for (idx, rule) in program.iter() {
        let body_atoms: Vec<Atom> = rule.body_positive().into_iter().cloned().collect();
        for h in matcher::all_atom_homomorphisms_delta(
            &body_atoms,
            instance,
            &Substitution::new(),
            watermark,
        ) {
            out.push(Trigger {
                rule_index: idx,
                homomorphism: h,
            });
        }
    }
    out
}

/// [`triggers_from`] over cached rule plans: the positive-body plan of each
/// rule is executed (never recompiled), and each resulting slot binding is
/// materialised into the stored trigger homomorphism.
///
/// When the round is large enough ([`parallel::MIN_PARALLEL_WORK`] instance
/// or delta atoms) the enumeration is fanned out over the scoped worker pool
/// as independent `(rule, delta-pivot)` work items, each matching against
/// the read-only `instance` snapshot and emitting into a per-item buffer;
/// the buffers are merged by rule index, then pivot, so the returned trigger
/// sequence is **identical at every thread count** (and identical to the
/// sequential enumeration) — chase worklists, and therefore null invention,
/// stay deterministic.
///
/// `plans` must be built from the same program whose rule indices the
/// triggers refer to.
pub fn triggers_from_compiled(
    plans: &CompiledRuleSet,
    instance: &Interpretation,
    watermark: usize,
) -> Vec<Trigger> {
    fan_out_triggers(plans, instance, watermark, |_, _| true)
}

/// The shared `(rule, delta-pivot)` fan-out behind the two trigger
/// discovery variants: enumerates every positive-body binding of every rule
/// against the delta suffix, materialises it, and keeps the triggers for
/// which `keep(rule index, homomorphism)` holds.
///
/// Work items are ordered by rule index then pivot.  With a zero watermark
/// the whole enumeration of a rule is attributed to pivot 0 (see
/// `CompiledConjunction::for_each_delta_pivot`), so one item per rule
/// suffices.
fn fan_out_triggers<F>(
    plans: &CompiledRuleSet,
    instance: &Interpretation,
    watermark: usize,
    keep: F,
) -> Vec<Trigger>
where
    F: Fn(usize, &Substitution) -> bool + Sync,
{
    let mut items: Vec<(usize, usize)> = Vec::new();
    for (idx, rule) in plans.iter() {
        let pivots = if watermark == 0 {
            1
        } else {
            rule.body_positive().positive_count()
        };
        for pivot in 0..pivots {
            items.push((idx, pivot));
        }
    }
    let work = if watermark == 0 {
        instance.len().max(1)
    } else {
        instance.len().saturating_sub(watermark)
    };
    let threads = parallel::threads_for(work);
    let empty = Substitution::new();
    let buckets = parallel::par_map_with(&items, threads, |_, &(idx, pivot)| {
        let mut out: Vec<Trigger> = Vec::new();
        plans.rule(idx).body_positive().for_each_delta_pivot(
            instance,
            &empty,
            watermark,
            pivot,
            &mut |binding| {
                let homomorphism = binding.to_substitution();
                if keep(idx, &homomorphism) {
                    out.push(Trigger {
                        rule_index: idx,
                        homomorphism,
                    });
                }
                ControlFlow::Continue(())
            },
        );
        out
    });
    buckets.into_iter().flatten().collect()
}

/// [`triggers_from_compiled`] restricted to **active** triggers: each
/// discovered trigger's head-satisfaction check runs inside the same
/// (possibly pool-parallel) work item that produced it, so the restricted
/// chase can queue triggers pre-verified against the frozen snapshot and
/// skip the pop-time re-check whenever no head-relevant atom has arrived
/// since (see the deactivation index in
/// [`restricted_chase`](crate::restricted::restricted_chase)).
///
/// Because instances only grow during a chase run, head satisfaction is
/// monotone: a trigger found *inactive* here can never become active again
/// and is dropped for good.
pub fn active_triggers_from_compiled(
    plans: &CompiledRuleSet,
    instance: &Interpretation,
    watermark: usize,
) -> Vec<Trigger> {
    fan_out_triggers(plans, instance, watermark, |idx, homomorphism| {
        ACTIVITY_CHECKS.fetch_add(1, Ordering::Relaxed);
        !plans.rule(idx).head().exists(instance, homomorphism)
    })
}

/// Returns `true` if the trigger is *active* in the restricted-chase sense:
/// there is no extension of its homomorphism mapping the head into the
/// instance.
pub fn is_active(trigger: &Trigger, program: &Program, instance: &Interpretation) -> bool {
    let rule = &program.rules()[trigger.rule_index];
    !matcher::exists_atom_homomorphism(rule.head(), instance, &trigger.homomorphism)
}

/// [`is_active`] over cached rule plans: the head plan is executed with the
/// trigger's (ground-valued) homomorphism applied as slot presets, with no
/// per-check compilation.
pub fn is_active_compiled(
    trigger: &Trigger,
    plans: &CompiledRuleSet,
    instance: &Interpretation,
) -> bool {
    ACTIVITY_CHECKS.fetch_add(1, Ordering::Relaxed);
    !plans
        .rule(trigger.rule_index)
        .head()
        .exists(instance, &trigger.homomorphism)
}

/// The active triggers of the program on the instance (restricted chase).
pub fn active_triggers(program: &Program, instance: &Interpretation) -> Vec<Trigger> {
    all_triggers(program, instance)
        .into_iter()
        .filter(|t| is_active(t, program, instance))
        .collect()
}

/// Applies a trigger: instantiate the head, mapping each existential variable
/// to a fresh labelled null, and insert the resulting atoms into the instance.
/// Returns the newly added atoms.
pub fn apply_trigger(
    trigger: &Trigger,
    program: &Program,
    instance: &mut Interpretation,
    nulls: &mut NullFactory,
) -> Vec<Atom> {
    let rule = &program.rules()[trigger.rule_index];
    let mut h = trigger.homomorphism.clone();
    for z in rule.existential_variables() {
        h.bind(Term::Var(z), nulls.fresh());
    }
    let mut added = Vec::new();
    for atom in rule.head() {
        let ground = h.apply_atom(atom);
        debug_assert!(ground.is_ground(), "head instantiation must be ground");
        if instance.insert(ground.clone()) {
            added.push(ground);
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::{atom, cst, var};
    use ntgd_parser::parse_program;

    fn father_program() -> Program {
        parse_program("person(X) -> hasFather(X, Y). hasFather(X, Y) -> person(Y).").unwrap()
    }

    fn db_interp() -> Interpretation {
        Interpretation::from_atoms(vec![atom("person", vec![cst("alice")])])
    }

    #[test]
    fn triggers_are_found_for_matching_bodies() {
        let p = father_program();
        let i = db_interp();
        let ts = all_triggers(&p, &i);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].rule_index, 0);
        assert_eq!(ts[0].homomorphism.apply_term(&var("X")), cst("alice"));
    }

    #[test]
    fn active_triggers_exclude_satisfied_heads() {
        let p = father_program();
        let mut i = db_interp();
        assert_eq!(active_triggers(&p, &i).len(), 1);
        i.insert(atom("hasFather", vec![cst("alice"), cst("bob")]));
        // The head of rule 0 is now satisfiable (Y -> bob), so the trigger is
        // inactive; but rule 1 now has an active trigger for bob.
        let active = active_triggers(&p, &i);
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].rule_index, 1);
    }

    #[test]
    fn applying_a_trigger_invents_fresh_nulls() {
        let p = father_program();
        let mut i = db_interp();
        let mut nulls = NullFactory::new();
        let ts = active_triggers(&p, &i);
        let added = apply_trigger(&ts[0], &p, &mut i, &mut nulls);
        assert_eq!(added.len(), 1);
        assert_eq!(added[0].predicate().as_str(), "hasFather");
        assert!(added[0].args()[1].is_null());
        assert_eq!(nulls.issued(), 1);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn negative_images_ground_the_negated_atoms() {
        let p = parse_program("hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).")
            .unwrap();
        let i = Interpretation::from_atoms(vec![
            atom("hasFather", vec![cst("a"), cst("b")]),
            atom("hasFather", vec![cst("a"), cst("c")]),
        ]);
        let ts = all_triggers(&p, &i);
        assert_eq!(ts.len(), 4); // (Y,Z) ∈ {b,c}²
        for t in &ts {
            let negs = t.negative_images(&p.rules()[0]);
            assert_eq!(negs.len(), 1);
            assert!(negs[0].is_ground());
            assert_eq!(negs[0].predicate().as_str(), "sameAs");
        }
    }

    #[test]
    fn delta_triggers_cover_exactly_the_new_homomorphisms() {
        let p = parse_program("e(X,Y), e(Y,Z) -> path(X,Z).").unwrap();
        let mut i = Interpretation::from_atoms(vec![
            atom("e", vec![cst("a"), cst("b")]),
            atom("e", vec![cst("b"), cst("c")]),
        ]);
        let before = all_triggers(&p, &i);
        assert_eq!(before.len(), 1);
        let watermark = i.len();
        i.insert(atom("e", vec![cst("c"), cst("d")]));
        let delta = triggers_from(&p, &i, watermark);
        // Only the homomorphism through the new edge b->c->d.
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].homomorphism.apply_term(&var("X")), cst("b"));
        // Old + delta = full rematch.
        assert_eq!(all_triggers(&p, &i).len(), before.len() + delta.len());
        // A watermark at the current size yields nothing.
        assert!(triggers_from(&p, &i, i.len()).is_empty());
    }

    #[test]
    fn trigger_keys_identify_frontier_bindings() {
        let p = father_program();
        let i = db_interp();
        let ts = all_triggers(&p, &i);
        let k1 = ts[0].key(&p.rules()[0]);
        let k2 = ts[0].key(&p.rules()[0]);
        assert_eq!(k1, k2);
    }
}
