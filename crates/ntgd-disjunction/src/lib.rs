//! # ntgd-disjunction
//!
//! Disjunction in rule heads (paper, Sections 6 and 7.2):
//!
//! * [`lemma13`] — the polynomial translation of Lemma 13 that eliminates
//!   disjunction from weakly-acyclic NDTGDs by *simulating it with existential
//!   quantification and stable negation* (the reason Theorem 12 shows that
//!   disjunction comes for free);
//! * [`datalog`] — disjunctive Datalog (`DATALOG¬,∨`) programs and the
//!   translation of Theorem 15/16 embedding them into `WATGD¬`, which
//!   underlies the expressive-power results (`WATGD¬_c = ΠᴾP₂`,
//!   `WATGD¬_b = ΣᴾP₂`).
//!
//! Both translations are validated in tests by comparing query answers
//! against the `ntgd-sms` engine run directly on the disjunctive input.

pub mod datalog;
pub mod lemma13;

pub use datalog::{datalog_to_watgd, DatalogQuery};
pub use lemma13::{eliminate_disjunction, DisjunctionFreeProgram};
