//! Lemma 13: eliminating disjunction from NDTGDs.
//!
//! Given a database `D` and a set `Σ ∈ WATGD¬,∨`, the translation produces a
//! database `D′` and a set `Σ′ ∈ TGD¬` (non-disjunctive) such that
//! `(D,Σ) ⊨_SMS q  iff  (D′,Σ′) ⊨_SMS q`.  For every disjunctive rule
//! `σ : ϕ(X,Y) → ⋁ᵢ ∃Zᵢ ψᵢ(X,Zᵢ)` the translation introduces
//!
//! * a *guess* part — a fresh predicate `t_σ(I, X, Z)` whose first position
//!   holds a disjunct index, constrained to one of the index constants
//!   `c₁,…,c_k` added to the database;
//! * an *infer* part — `t_σ(I,X,Z) ∧ idxᵢ(I) → ψᵢ(X,Zᵢ)`;
//! * a *stability* part — if some disjunct already holds, `t_σ` is supported
//!   with the `nil` constant padding the unused existential positions, so
//!   that the guess rule does not create spurious support.
//!
//! A 0-ary predicate `false` is forced to be false in every stable model via
//! the auxiliary rule `false ∧ ¬aux → aux`.

use ntgd_core::{
    atom, cst, Atom, CoreResult, Database, DisjunctiveProgram, Literal, Ntgd, Program, Symbol, Term,
};

/// The output of the Lemma 13 translation.
#[derive(Clone, Debug)]
pub struct DisjunctionFreeProgram {
    /// The translated, non-disjunctive program `Σ′`.
    pub program: Program,
    /// The facts to add to any input database (`nil(⋆)` and the disjunct
    /// index constants).
    pub extra_facts: Vec<Atom>,
}

impl DisjunctionFreeProgram {
    /// Extends a database with the auxiliary facts of the translation
    /// (producing the `D′` of Lemma 13).
    pub fn extend_database(&self, database: &Database) -> Database {
        let mut out = database.clone();
        for f in &self.extra_facts {
            out.insert(f.clone()).expect("auxiliary facts are ground");
        }
        out
    }
}

fn idx_predicate(i: usize) -> Symbol {
    Symbol::intern(&format!("idx{}", i + 1))
}

fn index_constant(i: usize) -> Term {
    cst(&format!("c_idx{}", i + 1))
}

const NIL_CONSTANT: &str = "nil_star";

/// Applies the Lemma 13 translation to a disjunctive program.
pub fn eliminate_disjunction(program: &DisjunctiveProgram) -> CoreResult<DisjunctionFreeProgram> {
    let max_disjuncts = program.max_disjuncts();
    let mut rules: Vec<Ntgd> = Vec::new();
    let mut needs_false_machinery = false;

    for (ridx, rule) in program.rules().iter().enumerate() {
        if rule.is_non_disjunctive() {
            rules.push(rule.to_ntgd().expect("single disjunct"));
            continue;
        }
        needs_false_machinery = true;
        let n = rule.disjunct_count();
        let t_pred = Symbol::intern(&format!("t_rule{ridx}"));
        let frontier: Vec<Term> = rule
            .universal_variables()
            .into_iter()
            .map(Term::Var)
            .collect();
        // The existential variables of each disjunct, in a fixed order.
        let per_disjunct_exist: Vec<Vec<Term>> = (0..n)
            .map(|d| {
                rule.existential_variables_of(d)
                    .into_iter()
                    .map(Term::Var)
                    .collect()
            })
            .collect();
        let all_exist: Vec<Term> = per_disjunct_exist.iter().flatten().copied().collect();
        let index_var = Term::variable(&format!("IDX_{ridx}"));

        // t_σ(I, X, Z) arguments: index, frontier, then all existential slots.
        let mut t_args = vec![index_var];
        t_args.extend(frontier.iter().copied());
        t_args.extend(all_exist.iter().copied());
        let t_head = Atom::new(t_pred, t_args.clone());

        // Guess: ϕ(X,Y) → ∃I ∃Z t_σ(I,X,Z).
        rules.push(Ntgd::new(rule.body().to_vec(), vec![t_head.clone()])?);

        // The index must be one of the declared disjunct indices:
        // t_σ(I,X,Z) ∧ ¬idx₁(I) ∧ … ∧ ¬idxₙ(I) → false.
        let mut guard_body = vec![Literal::positive(t_head.clone())];
        for i in 0..n {
            guard_body.push(Literal::negative(Atom::new(
                idx_predicate(i),
                vec![index_var],
            )));
        }
        rules.push(Ntgd::new(guard_body, vec![atom("false", vec![])])?);

        // Infer: t_σ(I,X,Z) ∧ idxᵢ(I) → ψᵢ(X,Zᵢ).
        for (i, disjunct) in rule.disjuncts().iter().enumerate() {
            let body = vec![
                Literal::positive(t_head.clone()),
                Literal::positive(Atom::new(idx_predicate(i), vec![index_var])),
            ];
            rules.push(Ntgd::new(body, [disjunct.clone()].concat())?);
        }

        // Stability: ϕ(X,Y) ∧ ψᵢ(X,Zᵢ) ∧ idxᵢ(I) ∧ nil(N)
        //              → t_σ(I, X, N..Zᵢ..N).
        let nil_var = Term::variable(&format!("NIL_{ridx}"));
        for (i, disjunct) in rule.disjuncts().iter().enumerate() {
            let mut body = rule.body().to_vec();
            for a in disjunct {
                body.push(Literal::positive(a.clone()));
            }
            body.push(Literal::positive(Atom::new(
                idx_predicate(i),
                vec![index_var],
            )));
            body.push(Literal::positive(atom("nil", vec![nil_var])));
            let mut head_args = vec![index_var];
            head_args.extend(frontier.iter().copied());
            for (d, exist) in per_disjunct_exist.iter().enumerate() {
                for z in exist {
                    if d == i {
                        head_args.push(*z);
                    } else {
                        head_args.push(nil_var);
                    }
                }
            }
            rules.push(Ntgd::new(body, vec![Atom::new(t_pred, head_args)])?);
        }
    }

    if needs_false_machinery {
        // false ∧ ¬aux → aux  forces `false` to be false in stable models.
        rules.push(Ntgd::new(
            vec![
                Literal::positive(atom("false", vec![])),
                Literal::negative(atom("aux", vec![])),
            ],
            vec![atom("aux", vec![])],
        )?);
    }

    let mut extra_facts = vec![atom("nil", vec![cst(NIL_CONSTANT)])];
    if needs_false_machinery {
        for i in 0..max_disjuncts {
            extra_facts.push(Atom::new(idx_predicate(i), vec![index_constant(i)]));
        }
    }
    Ok(DisjunctionFreeProgram {
        program: Program::from_rules(rules)?,
        extra_facts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::Query;
    use ntgd_parser::{parse_database, parse_query, parse_unit};
    use ntgd_sms::{SmsAnswer, SmsEngine};

    fn disjunctive(text: &str) -> DisjunctiveProgram {
        parse_unit(text).unwrap().disjunctive_program().unwrap()
    }

    fn cautious_direct(db: &Database, prog: &DisjunctiveProgram, q: &Query) -> SmsAnswer {
        SmsEngine::new_disjunctive(prog.clone())
            .entails_cautious(db, q)
            .unwrap()
    }

    fn cautious_translated(db: &Database, prog: &DisjunctiveProgram, q: &Query) -> SmsAnswer {
        let translated = eliminate_disjunction(prog).unwrap();
        let db2 = translated.extend_database(db);
        SmsEngine::new(&translated.program)
            .entails_cautious(&db2, q)
            .unwrap()
    }

    #[test]
    fn non_disjunctive_rules_pass_through_unchanged() {
        let prog = disjunctive("p(X) -> q(X). q(X), not r(X) -> s(X).");
        let t = eliminate_disjunction(&prog).unwrap();
        assert_eq!(t.program.len(), 2);
        assert_eq!(t.extra_facts.len(), 1); // just nil(⋆)
    }

    #[test]
    fn translation_introduces_guess_infer_and_stability_rules() {
        let prog = disjunctive("node(X) -> red(X) | green(X).");
        let t = eliminate_disjunction(&prog).unwrap();
        // guess + guard + 2 infer + 2 stability + false machinery = 7 rules.
        assert_eq!(t.program.len(), 7);
        // nil + idx1 + idx2 facts.
        assert_eq!(t.extra_facts.len(), 3);
    }

    #[test]
    #[ignore = "expensive: full counter-model exhaustion; exercised by the experiments binary instead"]
    fn translated_program_preserves_cautious_answers_for_colouring() {
        let prog = disjunctive("node(X) -> red(X) | green(X). edge(X,Y), red(X), red(Y) -> clash. edge(X,Y), green(X), green(Y) -> clash.");
        let db = parse_database("node(a). node(b). edge(a,b).").unwrap();
        let queries = ["?- clash.", "?- red(a), green(b).", "?- not clash."];
        for q_text in queries {
            let q = parse_query(q_text).unwrap();
            assert_eq!(
                cautious_direct(&db, &prog, &q),
                cautious_translated(&db, &prog, &q),
                "answers differ for {q_text}"
            );
        }
    }

    #[test]
    #[ignore = "expensive: full counter-model exhaustion; exercised by the experiments binary instead"]
    fn translated_program_preserves_answers_with_existentials_in_disjuncts() {
        // r(X) → p(X) ∨ ∃Y s(X,Y)   (the shape of Example 5).
        let prog =
            disjunctive("r(X) -> p(X) | s(X, Y). p(X) -> covered(X). s(X, Y) -> covered(X).");
        let db = parse_database("r(a).").unwrap();
        let q = parse_query("?- covered(a).").unwrap();
        assert_eq!(cautious_direct(&db, &prog, &q), SmsAnswer::Entailed);
        assert_eq!(cautious_translated(&db, &prog, &q), SmsAnswer::Entailed);
        let q2 = parse_query("?- p(a).").unwrap();
        assert_eq!(
            cautious_direct(&db, &prog, &q2),
            cautious_translated(&db, &prog, &q2)
        );
    }

    #[test]
    fn example5_shows_the_translation_may_break_weak_acyclicity() {
        // Example 5 of the paper: the original disjunctive program is weakly
        // acyclic but its translation is not (the new cycles are harmless for
        // complexity, as the paper argues).
        let prog = disjunctive("p(X) -> s(X, Y). r(X) -> p(X) | s(X, X).");
        assert!(ntgd_classes::is_weakly_acyclic_disjunctive(&prog));
        let t = eliminate_disjunction(&prog).unwrap();
        assert!(!ntgd_classes::is_weakly_acyclic(&t.program));
    }
}
