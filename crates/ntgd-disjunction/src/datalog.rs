//! Disjunctive Datalog and the Theorem 15/16 translation into `WATGD¬`.
//!
//! A `DATALOG¬,∨` query is a pair `(Σ, q)` where `Σ` is a set of NDTGDs whose
//! heads are existential-free disjunctions of atoms and `q` is a predicate
//! not occurring in rule bodies.  Theorem 15 (cautious) and Theorem 16
//! (brave) show that every such query can be translated into an equivalent
//! `WATGD¬` query — disjunction is *simulated* with existential
//! quantification and stable negation:
//!
//! * every predicate `p` is reified by a fresh unary predicate `pred_p`
//!   populated with a single guessed witness (`→ ∃X pred_p(X)`), pairwise
//!   disjoint from the other predicate witnesses;
//! * each disjunctive rule guesses a value `Z` (via `∃Z t_ρ(Z, X)`), forces
//!   `Z` to be one of the predicate witnesses of its disjuncts, infers the
//!   chosen disjunct, and adds support rules so that already-satisfied
//!   disjuncts keep `t_ρ` stable.
//!
//! Crucially, the only special edges of the translated position graph point
//! *into* `t_ρ[1]` and no edge leaves it, so the result is weakly acyclic —
//! this is exactly the argument closing Theorem 15 in the paper.

use ntgd_core::{
    atom, Atom, CoreError, CoreResult, DisjunctiveProgram, Literal, Ntgd, Program, Symbol, Term,
};

/// A disjunctive Datalog query `(Σ, q)`.
#[derive(Clone, Debug)]
pub struct DatalogQuery {
    /// The query program: NDTGDs with existential-free single-atom disjuncts.
    pub program: DisjunctiveProgram,
    /// The answer predicate (must not occur in rule bodies).
    pub query_predicate: Symbol,
}

impl DatalogQuery {
    /// Creates and validates a disjunctive Datalog query.
    pub fn new(program: DisjunctiveProgram, query_predicate: Symbol) -> CoreResult<DatalogQuery> {
        for rule in program.rules() {
            for (d, disjunct) in rule.disjuncts().iter().enumerate() {
                if disjunct.len() != 1 {
                    return Err(CoreError::Invalid(format!(
                        "disjunct `{}` is not a single atom",
                        disjunct
                            .iter()
                            .map(|a| a.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )));
                }
                if !rule.existential_variables_of(d).is_empty() {
                    return Err(CoreError::Invalid(format!(
                        "rule `{rule}` has existential variables; not a Datalog rule"
                    )));
                }
            }
            for lit in rule.body() {
                if lit.atom().predicate() == query_predicate {
                    return Err(CoreError::Invalid(format!(
                        "query predicate {query_predicate} occurs in a rule body"
                    )));
                }
            }
        }
        Ok(DatalogQuery {
            program,
            query_predicate,
        })
    }
}

/// The result of the Theorem 15/16 translation.
#[derive(Clone, Debug)]
pub struct TranslatedDatalogQuery {
    /// The weakly-acyclic normal program `Σ′`.
    pub program: Program,
    /// The fresh answer predicate `q′`.
    pub query_predicate: Symbol,
}

fn pred_witness(p: Symbol) -> Symbol {
    Symbol::intern(&format!("pred_{p}"))
}

/// Translates a disjunctive Datalog query into a `WATGD¬` query
/// (Theorem 15/16).  The same translation serves both the cautious and the
/// brave semantics.
pub fn datalog_to_watgd(query: &DatalogQuery) -> CoreResult<TranslatedDatalogQuery> {
    let schema = query.program.schema()?;
    let mut rules: Vec<Ntgd> = Vec::new();
    let false_atom = atom("false", vec![]);

    // Reify predicates: → ∃X pred_p(X), pairwise disjoint.
    let predicates: Vec<Symbol> = schema.predicates().map(|(p, _)| p).collect();
    for &p in &predicates {
        rules.push(Ntgd::new(
            Vec::new(),
            vec![Atom::new(pred_witness(p), vec![Term::variable("W")])],
        )?);
    }
    for (i, &p) in predicates.iter().enumerate() {
        for &s in predicates.iter().skip(i + 1) {
            rules.push(Ntgd::new(
                vec![
                    Literal::positive(Atom::new(pred_witness(p), vec![Term::variable("W")])),
                    Literal::positive(Atom::new(pred_witness(s), vec![Term::variable("W")])),
                ],
                vec![false_atom.clone()],
            )?);
        }
    }

    // Per-rule translation.
    for (ridx, rule) in query.program.rules().iter().enumerate() {
        if rule.is_non_disjunctive() {
            rules.push(rule.to_ntgd().expect("single disjunct"));
            continue;
        }
        let t_pred = Symbol::intern(&format!("t_datalog{ridx}"));
        let guess_var = Term::variable(&format!("Z_{ridx}"));
        let frontier: Vec<Term> = rule
            .universal_variables()
            .into_iter()
            .map(Term::Var)
            .collect();
        let mut t_args = vec![guess_var];
        t_args.extend(frontier.iter().copied());
        let t_head = Atom::new(t_pred, t_args);

        // ϕ(X,Y) → ∃Z t_ρ(Z, X).
        rules.push(Ntgd::new(rule.body().to_vec(), vec![t_head.clone()])?);
        // t_ρ(Z,X) ∧ ¬pred_{p₁}(Z) ∧ … ∧ ¬pred_{pₘ}(Z) → false.
        let mut guard = vec![Literal::positive(t_head.clone())];
        for disjunct in rule.disjuncts() {
            guard.push(Literal::negative(Atom::new(
                pred_witness(disjunct[0].predicate()),
                vec![guess_var],
            )));
        }
        rules.push(Ntgd::new(guard, vec![false_atom.clone()])?);
        // t_ρ(Z,X) ∧ pred_{pᵢ}(Z) → pᵢ(X).
        for disjunct in rule.disjuncts() {
            rules.push(Ntgd::new(
                vec![
                    Literal::positive(t_head.clone()),
                    Literal::positive(Atom::new(
                        pred_witness(disjunct[0].predicate()),
                        vec![guess_var],
                    )),
                ],
                vec![disjunct[0].clone()],
            )?);
        }
        // ϕ(X,Y) ∧ pᵢ(X) ∧ pred_{pᵢ}(Z) → t_ρ(Z, X).
        for disjunct in rule.disjuncts() {
            let mut body = rule.body().to_vec();
            body.push(Literal::positive(disjunct[0].clone()));
            body.push(Literal::positive(Atom::new(
                pred_witness(disjunct[0].predicate()),
                vec![guess_var],
            )));
            rules.push(Ntgd::new(body, vec![t_head.clone()])?);
        }
    }

    // false ∧ ¬aux → aux.
    rules.push(Ntgd::new(
        vec![
            Literal::positive(false_atom),
            Literal::negative(atom("aux", vec![])),
        ],
        vec![atom("aux", vec![])],
    )?);

    // q(X) → q′(X).
    let arity = schema.arity(query.query_predicate).unwrap_or(0);
    let q_vars: Vec<Term> = (0..arity)
        .map(|i| Term::variable(&format!("Q{i}")))
        .collect();
    let q_prime = Symbol::intern(&format!("{}_prime", query.query_predicate));
    rules.push(Ntgd::new(
        vec![Literal::positive(Atom::new(
            query.query_predicate,
            q_vars.clone(),
        ))],
        vec![Atom::new(q_prime, q_vars)],
    )?);

    Ok(TranslatedDatalogQuery {
        program: Program::from_rules(rules)?,
        query_predicate: q_prime,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_classes::is_weakly_acyclic;
    use ntgd_core::Query;
    use ntgd_parser::{parse_database, parse_unit};
    use ntgd_sms::{NullBudget, SmsAnswer, SmsEngine, SmsOptions};

    /// A small disjunctive Datalog program: guess a 2-colouring, derive
    /// `clash` on monochromatic edges, and `ok` when no clash can be avoided
    /// is *not* derived — the classical structure of CERT-style queries.
    fn two_colouring_query() -> DatalogQuery {
        let program = parse_unit(
            "node(X) -> red(X) | green(X).\
             edge(X, Y), red(X), red(Y) -> clash.\
             edge(X, Y), green(X), green(Y) -> clash.\
             clash -> q.",
        )
        .unwrap()
        .disjunctive_program()
        .unwrap();
        DatalogQuery::new(program, Symbol::intern("q")).unwrap()
    }

    #[test]
    fn validation_rejects_non_datalog_rules() {
        let with_exist = parse_unit("p(X) -> q(X, Y) | r(X).")
            .unwrap()
            .disjunctive_program()
            .unwrap();
        assert!(DatalogQuery::new(with_exist, Symbol::intern("q")).is_err());
        let conj_head = parse_unit("p(X) -> q(X), r(X) | s(X).")
            .unwrap()
            .disjunctive_program()
            .unwrap();
        assert!(DatalogQuery::new(conj_head, Symbol::intern("q")).is_err());
        let body_query = parse_unit("q(X) -> p(X) | r(X).")
            .unwrap()
            .disjunctive_program()
            .unwrap();
        assert!(DatalogQuery::new(body_query, Symbol::intern("q")).is_err());
    }

    #[test]
    fn translation_is_weakly_acyclic() {
        // The decisive point of Theorem 15: the translated program belongs to
        // WATGD¬ even though it uses existential quantification.
        let t = datalog_to_watgd(&two_colouring_query()).unwrap();
        assert!(is_weakly_acyclic(&t.program));
        assert_eq!(t.query_predicate.as_str(), "q_prime");
    }

    #[test]
    fn direct_disjunctive_answers_follow_colourability() {
        let dq = two_colouring_query();
        // Odd cycle: not 2-colourable, so clash (hence q) holds in every
        // stable model.  Even path: 2-colourable, so q is not cautiously
        // entailed but is bravely entailed (some colourings clash).
        let cases = [
            (
                "node(a). node(b). node(c). edge(a,b). edge(b,c). edge(c,a).",
                SmsAnswer::Entailed,
                true,
            ),
            ("node(a). node(b). edge(a,b).", SmsAnswer::NotEntailed, true),
        ];
        for (db_text, expected_cautious, expected_brave) in cases {
            let db = parse_database(db_text).unwrap();
            let q_direct = Query::boolean(vec![ntgd_core::pos("q", vec![])]).unwrap();
            let direct = SmsEngine::new_disjunctive(dq.program.clone());
            assert_eq!(
                direct.entails_cautious(&db, &q_direct).unwrap(),
                expected_cautious,
                "direct cautious answer for {db_text}"
            );
            assert_eq!(
                direct.entails_brave(&db, &q_direct).unwrap(),
                expected_brave,
                "direct brave answer for {db_text}"
            );
        }
    }

    #[test]
    #[ignore = "expensive: full counter-model exhaustion; exercised by the experiments binary instead"]
    fn translation_preserves_answers_on_a_small_graph() {
        // The translated program has a much larger grounding (one witness
        // predicate per relation), so the equivalence is exercised on the
        // smallest non-trivial graph; the larger comparison is part of
        // experiment E7 in the benchmark harness.
        let dq = two_colouring_query();
        let t = datalog_to_watgd(&dq).unwrap();
        let db = parse_database("node(a). node(b). edge(a,b).").unwrap();
        let q_direct = Query::boolean(vec![ntgd_core::pos("q", vec![])]).unwrap();
        let q_translated = Query::boolean(vec![ntgd_core::pos("q_prime", vec![])]).unwrap();
        let direct = SmsEngine::new_disjunctive(dq.program.clone());
        let translated = SmsEngine::new(&t.program).with_options(SmsOptions {
            null_budget: NullBudget::Auto,
            ..Default::default()
        });
        assert_eq!(
            direct.entails_brave(&db, &q_direct).unwrap(),
            translated.entails_brave(&db, &q_translated).unwrap(),
        );
        assert_eq!(
            direct.entails_cautious(&db, &q_direct).unwrap(),
            translated.entails_cautious(&db, &q_translated).unwrap(),
        );
    }
}
