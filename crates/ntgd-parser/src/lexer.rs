//! Tokenizer for the NTGD text format.

use std::fmt;

/// The kind of a token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Lower-case identifier, number, or quoted string (constant / predicate).
    LowerIdent(String),
    /// Upper-case or `_`-prefixed identifier (variable).
    UpperIdent(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Period,
    /// `->`
    Arrow,
    /// `|`
    Pipe,
    /// `not`
    Not,
    /// `?-`
    QueryArrow,
    /// `?`
    Question,
    /// `:-`
    ColonDash,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::LowerIdent(s) => write!(f, "constant `{s}`"),
            TokenKind::UpperIdent(s) => write!(f, "variable `{s}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Period => write!(f, "`.`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::Not => write!(f, "`not`"),
            TokenKind::QueryArrow => write!(f, "`?-`"),
            TokenKind::Question => write!(f, "`?`"),
            TokenKind::ColonDash => write!(f, "`:-`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

/// Errors produced by the lexer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for LexError {}

/// Streaming tokenizer.
pub struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over the given input.
    pub fn new(input: &'a str) -> Lexer<'a> {
        Lexer {
            chars: input.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    /// Tokenizes the entire input, appending a final [`TokenKind::Eof`].
    pub fn tokenize(input: &'a str) -> Result<Vec<Token>, LexError> {
        let mut lexer = Lexer::new(input);
        let mut out = Vec::new();
        loop {
            let t = lexer.next_token()?;
            let eof = t.kind == TokenKind::Eof;
            out.push(t);
            if eof {
                return Ok(out);
            }
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if let Some(ch) = c {
            if ch == '\n' {
                self.line += 1;
                self.column = 1;
            } else {
                self.column += 1;
            }
        }
        c
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.chars.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('%') => {
                    while let Some(&c) = self.chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            line: self.line,
            column: self.column,
        }
    }

    /// Produces the next token.
    pub fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia();
        let line = self.line;
        let column = self.column;
        let make = |kind| Token { kind, line, column };
        let Some(&c) = self.chars.peek() else {
            return Ok(make(TokenKind::Eof));
        };
        match c {
            '(' => {
                self.bump();
                Ok(make(TokenKind::LParen))
            }
            ')' => {
                self.bump();
                Ok(make(TokenKind::RParen))
            }
            ',' => {
                self.bump();
                Ok(make(TokenKind::Comma))
            }
            '.' => {
                self.bump();
                Ok(make(TokenKind::Period))
            }
            '|' => {
                self.bump();
                Ok(make(TokenKind::Pipe))
            }
            '-' => {
                self.bump();
                if self.chars.peek() == Some(&'>') {
                    self.bump();
                    Ok(make(TokenKind::Arrow))
                } else {
                    Err(self.error("expected `->`"))
                }
            }
            ':' => {
                self.bump();
                if self.chars.peek() == Some(&'-') {
                    self.bump();
                    Ok(make(TokenKind::ColonDash))
                } else {
                    Err(self.error("expected `:-`"))
                }
            }
            '?' => {
                self.bump();
                if self.chars.peek() == Some(&'-') {
                    self.bump();
                    Ok(make(TokenKind::QueryArrow))
                } else {
                    Ok(make(TokenKind::Question))
                }
            }
            '"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some('"') => break,
                        Some(ch) => s.push(ch),
                        None => return Err(self.error("unterminated string literal")),
                    }
                }
                Ok(make(TokenKind::LowerIdent(s)))
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&ch) = self.chars.peek() {
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        s.push(ch);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(make(TokenKind::LowerIdent(s)))
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&ch) = self.chars.peek() {
                    if ch.is_alphanumeric() || ch == '_' {
                        s.push(ch);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if s == "not" {
                    Ok(make(TokenKind::Not))
                } else if s.starts_with(|ch: char| ch.is_uppercase() || ch == '_') {
                    Ok(make(TokenKind::UpperIdent(s)))
                } else {
                    Ok(make(TokenKind::LowerIdent(s)))
                }
            }
            other => Err(self.error(format!("unexpected character `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        Lexer::tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_a_fact() {
        assert_eq!(
            kinds("person(alice)."),
            vec![
                TokenKind::LowerIdent("person".into()),
                TokenKind::LParen,
                TokenKind::LowerIdent("alice".into()),
                TokenKind::RParen,
                TokenKind::Period,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tokenizes_rules_with_negation_and_disjunction() {
        let ks = kinds("p(X), not q(X) -> r(X) | s(X).");
        assert!(ks.contains(&TokenKind::Not));
        assert!(ks.contains(&TokenKind::Arrow));
        assert!(ks.contains(&TokenKind::Pipe));
        assert!(ks.contains(&TokenKind::UpperIdent("X".into())));
    }

    #[test]
    fn distinguishes_variables_from_constants() {
        assert_eq!(
            kinds("X _y abc 42 \"Hello World\""),
            vec![
                TokenKind::UpperIdent("X".into()),
                TokenKind::UpperIdent("_y".into()),
                TokenKind::LowerIdent("abc".into()),
                TokenKind::LowerIdent("42".into()),
                TokenKind::LowerIdent("Hello World".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments_and_whitespace() {
        let ks = kinds("% a comment\n  p(a). % trailing\n");
        assert_eq!(ks.len(), 6);
    }

    #[test]
    fn query_tokens() {
        assert_eq!(
            kinds("?- p(X). ?(X) :- q(X)."),
            vec![
                TokenKind::QueryArrow,
                TokenKind::LowerIdent("p".into()),
                TokenKind::LParen,
                TokenKind::UpperIdent("X".into()),
                TokenKind::RParen,
                TokenKind::Period,
                TokenKind::Question,
                TokenKind::LParen,
                TokenKind::UpperIdent("X".into()),
                TokenKind::RParen,
                TokenKind::ColonDash,
                TokenKind::LowerIdent("q".into()),
                TokenKind::LParen,
                TokenKind::UpperIdent("X".into()),
                TokenKind::RParen,
                TokenKind::Period,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn reports_positions_and_errors() {
        let err = Lexer::tokenize("p(a) ;").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains(";"));
        let err = Lexer::tokenize("\"oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        let toks = Lexer::tokenize("p(a).\nq(b).").unwrap();
        assert_eq!(toks[5].line, 2);
    }

    #[test]
    fn lone_dash_is_an_error() {
        assert!(Lexer::tokenize("p(a) - q(b)").is_err());
    }
}
