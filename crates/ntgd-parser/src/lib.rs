//! # ntgd-parser
//!
//! A small text format for NTGD programs, databases and queries, with a
//! hand-written lexer and recursive-descent parser.
//!
//! ## Syntax
//!
//! ```text
//! % a comment runs to the end of the line
//! person(alice).                                   % database fact
//! person(X) -> hasFather(X, Y).                    % NTGD (Y is existential)
//! hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).
//! node(X) -> red(X) | green(X) | blue(X).          % disjunctive rule (NDTGD)
//! -> zero(X).                                      % empty body is allowed
//! ?- person(X), not abnormal(X).                   % Boolean query
//! ?(X) :- person(X), not abnormal(X).              % query with answer variables
//! ```
//!
//! Identifiers starting with an upper-case letter or `_` are variables;
//! identifiers starting with a lower-case letter, numbers, and quoted strings
//! are constants.  Predicate names are the identifiers heading an atom.
//!
//! The entry point is [`parse_unit`], which returns a [`ParsedUnit`] holding
//! the database, the (possibly disjunctive) program and the queries found in
//! the input.  [`parse_program`], [`parse_database`], [`parse_rule`] and
//! [`parse_query`] are convenience wrappers.

pub mod lexer;
pub mod parser;

pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{
    parse_database, parse_ndtgd, parse_program, parse_query, parse_rule, parse_unit, ParseError,
    ParsedUnit,
};
