//! Recursive-descent parser producing `ntgd-core` values.

use std::fmt;

use ntgd_core::{
    Atom, CoreError, Database, DisjunctiveProgram, Literal, Ndtgd, Ntgd, Program, Query, Symbol,
    Term,
};

use crate::lexer::{LexError, Lexer, Token, TokenKind};

/// Errors produced while parsing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// A lexical error.
    Lex(LexError),
    /// An unexpected token.
    Unexpected {
        /// What was found.
        found: String,
        /// What was expected.
        expected: String,
        /// 1-based line.
        line: usize,
        /// 1-based column.
        column: usize,
    },
    /// A semantic validation error from `ntgd-core` (safety, arities, ...).
    Semantic(CoreError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "lexical error: {e}"),
            ParseError::Unexpected {
                found,
                expected,
                line,
                column,
            } => write!(f, "{line}:{column}: expected {expected}, found {found}"),
            ParseError::Semantic(e) => write!(f, "invalid statement: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

impl From<CoreError> for ParseError {
    fn from(e: CoreError) -> Self {
        ParseError::Semantic(e)
    }
}

/// The result of parsing a full input unit: facts, rules and queries in
/// source order.
#[derive(Clone, Debug, Default)]
pub struct ParsedUnit {
    /// Database facts (ground atoms terminated by `.`).
    pub database: Database,
    /// All rules, in disjunctive form (single-disjunct rules for plain NTGDs).
    pub rules: Vec<Ndtgd>,
    /// Queries (`?- ...` and `?(X,...) :- ...`).
    pub queries: Vec<Query>,
}

impl ParsedUnit {
    /// The rules as a non-disjunctive [`Program`], if no rule uses `|`.
    pub fn program(&self) -> Option<Program> {
        DisjunctiveProgram::from_rules(self.rules.clone())
            .ok()?
            .to_program()
    }

    /// The rules as a [`DisjunctiveProgram`].
    pub fn disjunctive_program(&self) -> Result<DisjunctiveProgram, CoreError> {
        DisjunctiveProgram::from_rules(self.rules.clone())
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            tokens: Lexer::tokenize(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        let t = self.peek();
        ParseError::Unexpected {
            found: t.kind.to_string(),
            expected: expected.to_owned(),
            line: t.line,
            column: t.column,
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::LowerIdent(s) => {
                self.bump();
                Ok(Term::constant(&s))
            }
            TokenKind::UpperIdent(s) => {
                self.bump();
                Ok(Term::variable(&s))
            }
            _ => Err(self.unexpected("a term (constant or variable)")),
        }
    }

    fn parse_atom(&mut self) -> Result<Atom, ParseError> {
        let name = match self.peek().kind.clone() {
            TokenKind::LowerIdent(s) => {
                self.bump();
                s
            }
            _ => return Err(self.unexpected("a predicate name")),
        };
        let mut args = Vec::new();
        if self.peek().kind == TokenKind::LParen {
            self.bump();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    args.push(self.parse_term()?);
                    if self.peek().kind == TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
        }
        Ok(Atom::new(Symbol::intern(&name), args))
    }

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        if self.peek().kind == TokenKind::Not {
            self.bump();
            Ok(Literal::negative(self.parse_atom()?))
        } else {
            Ok(Literal::positive(self.parse_atom()?))
        }
    }

    fn parse_literal_list(&mut self) -> Result<Vec<Literal>, ParseError> {
        let mut out = vec![self.parse_literal()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            out.push(self.parse_literal()?);
        }
        Ok(out)
    }

    fn parse_atom_list(&mut self) -> Result<Vec<Atom>, ParseError> {
        let mut out = vec![self.parse_atom()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            out.push(self.parse_atom()?);
        }
        Ok(out)
    }

    /// head ::= atom_list ('|' atom_list)*
    fn parse_head(&mut self) -> Result<Vec<Vec<Atom>>, ParseError> {
        let mut disjuncts = vec![self.parse_atom_list()?];
        while self.peek().kind == TokenKind::Pipe {
            self.bump();
            disjuncts.push(self.parse_atom_list()?);
        }
        Ok(disjuncts)
    }

    /// statement ::= fact | rule | query
    fn parse_statement(&mut self, unit: &mut ParsedUnit) -> Result<(), ParseError> {
        match self.peek().kind.clone() {
            TokenKind::QueryArrow => {
                self.bump();
                let literals = self.parse_literal_list()?;
                self.expect(&TokenKind::Period, "`.`")?;
                unit.queries.push(Query::boolean(literals)?);
                Ok(())
            }
            TokenKind::Question => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(`")?;
                let mut answer_vars = Vec::new();
                if self.peek().kind != TokenKind::RParen {
                    loop {
                        match self.peek().kind.clone() {
                            TokenKind::UpperIdent(s) => {
                                self.bump();
                                answer_vars.push(Symbol::intern(&s));
                            }
                            _ => return Err(self.unexpected("an answer variable")),
                        }
                        if self.peek().kind == TokenKind::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen, "`)`")?;
                self.expect(&TokenKind::ColonDash, "`:-`")?;
                let literals = self.parse_literal_list()?;
                self.expect(&TokenKind::Period, "`.`")?;
                unit.queries.push(Query::new(answer_vars, literals)?);
                Ok(())
            }
            TokenKind::Arrow => {
                // Rule with an empty body: `-> head.`
                self.bump();
                let disjuncts = self.parse_head()?;
                self.expect(&TokenKind::Period, "`.`")?;
                unit.rules.push(Ndtgd::new(Vec::new(), disjuncts)?);
                Ok(())
            }
            _ => {
                let literals = self.parse_literal_list()?;
                match self.peek().kind.clone() {
                    TokenKind::Period => {
                        self.bump();
                        // A fact: a single positive ground atom.
                        if literals.len() == 1
                            && literals[0].is_positive()
                            && literals[0].atom().is_constant_only()
                        {
                            unit.database.insert(literals[0].atom().clone())?;
                            Ok(())
                        } else {
                            Err(ParseError::Semantic(CoreError::Invalid(format!(
                                "`{}` is neither a ground fact nor a rule",
                                literals
                                    .iter()
                                    .map(|l| l.to_string())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ))))
                        }
                    }
                    TokenKind::Arrow => {
                        self.bump();
                        let disjuncts = self.parse_head()?;
                        self.expect(&TokenKind::Period, "`.`")?;
                        unit.rules.push(Ndtgd::new(literals, disjuncts)?);
                        Ok(())
                    }
                    _ => Err(self.unexpected("`.` or `->`")),
                }
            }
        }
    }

    fn parse_unit(&mut self) -> Result<ParsedUnit, ParseError> {
        let mut unit = ParsedUnit::default();
        while !self.at_eof() {
            self.parse_statement(&mut unit)?;
        }
        Ok(unit)
    }
}

/// Parses a full input (facts, rules, queries).
pub fn parse_unit(input: &str) -> Result<ParsedUnit, ParseError> {
    Parser::new(input)?.parse_unit()
}

/// Parses an input that contains only rules (no `|`), returning a [`Program`].
pub fn parse_program(input: &str) -> Result<Program, ParseError> {
    let unit = parse_unit(input)?;
    if !unit.database.is_empty() || !unit.queries.is_empty() {
        return Err(ParseError::Semantic(CoreError::Invalid(
            "expected only rules in a program".to_owned(),
        )));
    }
    let mut rules = Vec::new();
    for r in unit.rules {
        match r.to_ntgd() {
            Some(rule) => rules.push(rule),
            None => {
                return Err(ParseError::Semantic(CoreError::Invalid(
                    "disjunctive rule in a non-disjunctive program".to_owned(),
                )))
            }
        }
    }
    Ok(Program::from_rules(rules)?)
}

/// Parses an input that contains only facts, returning a [`Database`].
pub fn parse_database(input: &str) -> Result<Database, ParseError> {
    let unit = parse_unit(input)?;
    if !unit.rules.is_empty() || !unit.queries.is_empty() {
        return Err(ParseError::Semantic(CoreError::Invalid(
            "expected only facts in a database".to_owned(),
        )));
    }
    Ok(unit.database)
}

/// Parses a single (non-disjunctive) rule.
pub fn parse_rule(input: &str) -> Result<Ntgd, ParseError> {
    let program = parse_program(input)?;
    if program.len() != 1 {
        return Err(ParseError::Semantic(CoreError::Invalid(
            "expected exactly one rule".to_owned(),
        )));
    }
    Ok(program.rules()[0].clone())
}

/// Parses a single, possibly disjunctive, rule.
pub fn parse_ndtgd(input: &str) -> Result<Ndtgd, ParseError> {
    let unit = parse_unit(input)?;
    if unit.rules.len() != 1 || !unit.database.is_empty() || !unit.queries.is_empty() {
        return Err(ParseError::Semantic(CoreError::Invalid(
            "expected exactly one rule".to_owned(),
        )));
    }
    Ok(unit.rules.into_iter().next().expect("one rule"))
}

/// Parses a single query.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let unit = parse_unit(input)?;
    if unit.queries.len() != 1 || !unit.database.is_empty() || !unit.rules.is_empty() {
        return Err(ParseError::Semantic(CoreError::Invalid(
            "expected exactly one query".to_owned(),
        )));
    }
    Ok(unit.queries.into_iter().next().expect("one query"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::{atom, cst};

    const EXAMPLE1: &str = r#"
        % Example 1 of the paper
        person(alice).
        person(X) -> hasFather(X, Y).
        hasFather(X, Y) -> sameAs(Y, Y).
        hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).
        ?- person(X), not abnormal(X).
    "#;

    #[test]
    fn parses_example1() {
        let unit = parse_unit(EXAMPLE1).unwrap();
        assert_eq!(unit.database.len(), 1);
        assert!(unit.database.contains(&atom("person", vec![cst("alice")])));
        assert_eq!(unit.rules.len(), 3);
        assert_eq!(unit.queries.len(), 1);
        let program = unit.program().unwrap();
        assert_eq!(program.len(), 3);
        assert!(!program.is_positive());
    }

    #[test]
    fn parses_facts_rules_and_queries_separately() {
        let db = parse_database("p(a). q(a, b).").unwrap();
        assert_eq!(db.len(), 2);
        let prog = parse_program("p(X) -> q(X, Y). q(X, Y), not r(X) -> s(X).").unwrap();
        assert_eq!(prog.len(), 2);
        let q = parse_query("?(X) :- p(X), not s(X).").unwrap();
        assert_eq!(q.arity(), 1);
        let bq = parse_query("?- p(X).").unwrap();
        assert!(bq.is_boolean());
    }

    #[test]
    fn parses_disjunctive_rules() {
        let r = parse_ndtgd("node(X) -> red(X) | green(X) | blue(X).").unwrap();
        assert_eq!(r.disjunct_count(), 3);
        let unit = parse_unit("node(X) -> red(X) | green(X).").unwrap();
        assert!(unit.program().is_none());
        assert!(unit.disjunctive_program().is_ok());
    }

    #[test]
    fn parses_empty_body_and_zero_ary_rules() {
        let r = parse_rule("-> zero(X).").unwrap();
        assert!(r.body().is_empty());
        assert_eq!(r.existential_variables().len(), 1);
        let r = parse_rule("not saturate -> saturate.").unwrap();
        assert_eq!(r.body_negative().len(), 1);
        assert_eq!(r.head()[0].arity(), 0);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse_unit("p(X) ->").is_err());
        assert!(parse_unit("p(a)").is_err());
        assert!(parse_unit("p(X).").is_err()); // non-ground fact
        assert!(parse_unit("-> .").is_err());
        assert!(parse_unit("?(a) :- p(a).").is_err()); // answer term must be a variable
        assert!(parse_unit("not q(X) -> p(X).").is_err()); // unsafe rule
    }

    #[test]
    fn rejects_category_mixups() {
        assert!(parse_database("p(X) -> q(X).").is_err());
        assert!(parse_program("p(a).").is_err());
        assert!(parse_query("p(a).").is_err());
        assert!(parse_rule("p(X) -> q(X). r(X) -> s(X).").is_err());
    }

    #[test]
    fn quoted_and_numeric_constants() {
        let db = parse_database("label(1, \"Node One\").").unwrap();
        assert!(db.contains(&atom("label", vec![cst("1"), cst("Node One")])));
    }

    #[test]
    fn display_parse_round_trip_for_rules() {
        let texts = [
            "person(X) -> hasFather(X,Y).",
            "hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).",
            "node(X) -> red(X) | green(X) | blue(X).",
        ];
        for t in texts {
            let r = parse_ndtgd(t).unwrap();
            let round = parse_ndtgd(&r.to_string()).unwrap();
            assert_eq!(r, round, "round trip failed for {t}");
        }
    }

    #[test]
    fn parse_error_reports_location() {
        let err = parse_unit("p(a).\nq(X) -> ;").unwrap_err();
        match err {
            ParseError::Lex(e) => assert_eq!(e.line, 2),
            ParseError::Unexpected { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
