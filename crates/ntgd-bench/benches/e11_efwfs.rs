//! Criterion benchmark for experiment E11: the bounded equality-friendly
//! well-founded semantics on the paper's Examples 2/3, as the number of fresh
//! constants (and hence the explored instance space) grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntgd_lp::EfwfsConfig;
use ntgd_parser::parse_query;

fn bench(c: &mut Criterion) {
    let database = ntgd_bench::example1_database();
    let program = ntgd_bench::example1_program();
    let query = parse_query("?- not abnormal(alice).").expect("query parses");

    let mut group = c.benchmark_group("e11_efwfs");
    for &fresh in &[0usize, 1] {
        let config = EfwfsConfig {
            fresh_constants: fresh,
            ..EfwfsConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("example3_cautious", fresh),
            &config,
            |b, config| {
                b.iter(|| {
                    std::hint::black_box(ntgd_lp::efwfs_entails_cautious(
                        &database, &program, &query, config,
                    ))
                })
            },
        );
    }
    group.finish();

    c.bench_function("e11_efwfs_table", |b| {
        b.iter(|| std::hint::black_box(ntgd_bench::e11_efwfs()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
