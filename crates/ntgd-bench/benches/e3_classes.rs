//! Criterion benchmark for experiment E3: class-checker runtime scaling
//! (weak-acyclicity, stickiness, guardedness) on growing rule sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_classes");
    for &rules in &[5usize, 20, 50] {
        let mut rng = StdRng::seed_from_u64(3);
        let program = ntgd_bench::random_weakly_acyclic_program(&mut rng, rules);
        group.bench_with_input(
            BenchmarkId::new("weak_acyclicity", rules),
            &program,
            |b, p| b.iter(|| std::hint::black_box(ntgd_classes::is_weakly_acyclic(p))),
        );
        group.bench_with_input(BenchmarkId::new("stickiness", rules), &program, |b, p| {
            b.iter(|| std::hint::black_box(ntgd_classes::is_sticky(p)))
        });
        group.bench_with_input(BenchmarkId::new("guardedness", rules), &program, |b, p| {
            b.iter(|| std::hint::black_box(ntgd_classes::is_guarded(p)))
        });
    }
    group.finish();
    // The fixed classification table of Figure 1 and friends.
    c.bench_function("e3_figure1_table", |b| {
        b.iter(|| std::hint::black_box(ntgd_bench::e3_classes()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
