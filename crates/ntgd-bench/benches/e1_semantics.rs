//! Criterion benchmark for experiment E1: the semantic comparison of
//! Examples 1-4 (LP approach vs chase-based operational semantics vs the
//! paper's new SMS) on the person/hasFather program.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("e1_semantics", |b| {
        b.iter(|| std::hint::black_box(ntgd_bench::e1_semantics()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
