//! Criterion benchmark for experiment E10: cost of the W-Stability check
//! (Section 5.2) as the candidate model grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_stability");
    for &n in &[2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(ntgd_bench::e10_stability(n)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
