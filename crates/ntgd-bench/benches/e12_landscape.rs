//! Criterion benchmark for experiment E12: the full class-landscape
//! classification (weak/joint acyclicity, MFA, aGRD, guardedness fragments,
//! stickiness, stratification) on growing random rule sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_landscape");
    for &rules in &[5usize, 15, 30] {
        let mut rng = StdRng::seed_from_u64(12);
        let program = ntgd_bench::random_weakly_acyclic_program(&mut rng, rules);
        group.bench_with_input(BenchmarkId::new("classify", rules), &program, |b, p| {
            b.iter(|| std::hint::black_box(ntgd_classes::classify(p)))
        });
        group.bench_with_input(
            BenchmarkId::new("joint_acyclicity", rules),
            &program,
            |b, p| b.iter(|| std::hint::black_box(ntgd_classes::is_jointly_acyclic(p))),
        );
        group.bench_with_input(BenchmarkId::new("mfa", rules), &program, |b, p| {
            b.iter(|| std::hint::black_box(ntgd_classes::is_model_faithful_acyclic(p)))
        });
    }
    group.finish();

    c.bench_function("e12_landscape_table", |b| {
        b.iter(|| std::hint::black_box(ntgd_bench::e12_landscape()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
