//! Criterion benchmark for the matcher hot path: the indexed join engine of
//! `ntgd_core::matcher` versus the retained naive reference matcher
//! (`ntgd_core::matcher::reference`) on chain joins, star joins and
//! negation-heavy conjunctions, plus the compiled-plan workloads of the plan
//! cache PR: compile-once-vs-compile-per-call on a multi-round chain-join
//! delta workload, and slot-view-vs-cloned-substitution enumeration.
//!
//! Besides the criterion-style report, the benchmark records the measured
//! medians and speedups in `BENCH_matcher.json` at the repository root, so
//! the before/after numbers of the matcher PRs stay reproducible with
//! `cargo bench --bench matcher` (the CI gate compares them against the
//! committed baseline with `cargo run -p ntgd-bench --bin bench_gate`).

use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::Criterion;
use ntgd_chase::triggers_from_compiled;
use ntgd_core::matcher::{self, reference};
use ntgd_core::{
    atom, cst, parallel, var, Atom, CompiledConjunction, CompiledRuleSet, Interpretation, Literal,
    Substitution,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Workload {
    name: &'static str,
    interpretation: Interpretation,
    conjunction: Vec<Literal>,
}

/// A sparse random edge relation.
fn random_edges(rng: &mut StdRng, nodes: usize, edges: usize) -> Interpretation {
    let mut interpretation = Interpretation::new();
    while interpretation.len() < edges {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        interpretation.insert(atom(
            "e",
            vec![cst(&format!("n{a}")), cst(&format!("n{b}"))],
        ));
    }
    interpretation
}

fn workloads() -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(0x6a01);
    let mut out = Vec::new();

    // Chain join: e(X,Y), e(Y,Z), e(Z,W) over a sparse random graph.  The
    // indexed engine probes (e, 0, y) for the bound joint variables; the
    // reference matcher rescans all edges at every level.
    let chain = random_edges(&mut rng, 150, 450);
    out.push(Workload {
        name: "chain_join",
        interpretation: chain,
        conjunction: vec![
            Literal::positive(atom("e", vec![var("X"), var("Y")])),
            Literal::positive(atom("e", vec![var("Y"), var("Z")])),
            Literal::positive(atom("e", vec![var("Z"), var("W")])),
        ],
    });

    // Star join: a large spoke relation joined with a tiny selective one.
    // The planner must reorder to start from the selective predicate.
    let mut star = Interpretation::new();
    for spoke in 0..2_000 {
        star.insert(atom(
            "likes",
            vec![cst(&format!("u{}", spoke % 50)), cst(&format!("i{spoke}"))],
        ));
    }
    for marked in 0..5 {
        star.insert(atom("mark", vec![cst(&format!("i{}", marked * 311))]));
    }
    out.push(Workload {
        name: "star_join",
        interpretation: star,
        conjunction: vec![
            Literal::positive(atom("likes", vec![var("X"), var("Y")])),
            Literal::positive(atom("mark", vec![var("Y")])),
        ],
    });

    // Negation: a join filtered by two negative literals (safe: all
    // variables are bound positively).
    let mut negation = random_edges(&mut rng, 120, 360);
    for k in 0..60 {
        negation.insert(atom("blocked", vec![cst(&format!("n{}", k * 2))]));
    }
    out.push(Workload {
        name: "negation",
        interpretation: negation,
        conjunction: vec![
            Literal::positive(atom("e", vec![var("X"), var("Y")])),
            Literal::positive(atom("e", vec![var("Y"), var("Z")])),
            Literal::negative(atom("blocked", vec![var("X")])),
            Literal::negative(atom("e", vec![var("Z"), var("X")])),
        ],
    });

    out
}

fn count_indexed(workload: &Workload) -> usize {
    matcher::all_homomorphisms(
        &workload.conjunction,
        &workload.interpretation,
        &Substitution::new(),
    )
    .len()
}

fn count_reference(workload: &Workload) -> usize {
    reference::all_homomorphisms(
        &workload.conjunction,
        &workload.interpretation,
        &Substitution::new(),
    )
    .len()
}

/// Median wall-clock duration of `samples` runs of `routine`.
fn median_duration<F: FnMut() -> usize>(samples: usize, mut routine: F) -> Duration {
    std::hint::black_box(routine());
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(routine());
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn time_once<F: FnMut() -> usize>(mut routine: F) -> Duration {
    let start = Instant::now();
    std::hint::black_box(routine());
    start.elapsed()
}

fn median_of(times: &mut [Duration]) -> Duration {
    times.sort();
    times[times.len() / 2]
}

/// The multi-round chain-join delta workload of the plan-cache comparison: a
/// base graph, the atoms inserted one per round, and the chain body.
fn compile_cache_workload() -> (Interpretation, Vec<Atom>, Vec<Atom>) {
    let mut rng = StdRng::seed_from_u64(0x6a03);
    // Sparse: a chase round typically derives a handful of atoms, so the
    // delta neighbourhood (and thus the matching work per round) is tiny and
    // per-round compilation is the dominant avoidable cost.
    let base = random_edges(&mut rng, 2_000, 400);
    let extra: Vec<Atom> = (0..600)
        .map(|_| {
            let a = rng.gen_range(0..2_000);
            let b = rng.gen_range(0..2_000);
            atom("e", vec![cst(&format!("n{a}")), cst(&format!("n{b}"))])
        })
        .collect();
    let body = vec![
        atom("e", vec![var("X"), var("Y")]),
        atom("e", vec![var("Y"), var("Z")]),
        atom("e", vec![var("Z"), var("W")]),
        atom("e", vec![var("W"), var("V")]),
        atom("e", vec![var("V"), var("U")]),
    ];
    (base, extra, body)
}

/// Runs the multi-round workload: every round inserts one atom and
/// delta-matches the chain body against it.  With `cached` the plan is
/// compiled once before the rounds; otherwise every round compiles a
/// one-shot plan (the pre-cache behaviour of chase/grounding loops).
fn run_delta_rounds(cached: bool, base: &Interpretation, extra: &[Atom], body: &[Atom]) -> usize {
    let empty = Substitution::new();
    let mut interpretation = base.clone();
    let plan = CompiledConjunction::compile_atoms(body, &interpretation);
    let mut count = 0usize;
    for edge in extra {
        let watermark = interpretation.len();
        if !interpretation.insert(edge.clone()) {
            continue;
        }
        if cached {
            plan.for_each_delta(&interpretation, &empty, watermark, &mut |_| {
                count += 1;
                ControlFlow::Continue(())
            });
        } else {
            // Compile-per-call: what every fixpoint round paid before the
            // plan cache (identical execution path, fresh compilation).
            let one_shot = CompiledConjunction::compile_atoms(body, &interpretation);
            one_shot.for_each_delta(&interpretation, &empty, watermark, &mut |_| {
                count += 1;
                ControlFlow::Continue(())
            });
        }
    }
    count
}

/// The parallel-scaling workload: a multi-rule join program over a sparse
/// random graph, plus a watermark selecting a sizable delta suffix — the
/// shape of one semi-naive chase round whose `(rule, pivot)` work items the
/// scoped worker pool distributes.
fn parallel_scaling_workload() -> (ntgd_core::Program, Interpretation, usize) {
    let program = ntgd_parser::parse_program(
        "e(X, Y), e(Y, Z) -> chain2(X, Z).\
         e(X, Y), e(Y, Z), e(Z, W) -> chain3(X, W).\
         e(X, Y), e(X, Z) -> fanout(Y, Z).\
         e(X, Y), e(Z, Y) -> fanin(X, Z).\
         e(X, Y), e(Y, X) -> mutual(X).\
         e(X, Y), e(Y, Z), e(Z, X) -> triangle(X).\
         e(X, Y), e(Y, Z), e(X, Z) -> shortcut(X, Z).\
         e(X, Y) -> labelled(Y, L).",
    )
    .expect("parallel workload program parses");
    let mut rng = StdRng::seed_from_u64(0x6a05);
    let instance = random_edges(&mut rng, 220, 700);
    // The delta suffix: the last ~25% of the arena, as if one chase round
    // had just derived it.
    let delta_watermark = instance.len() - instance.len() / 4;
    (program, instance, delta_watermark)
}

/// One delta-matching round: how long it takes to find the homomorphisms
/// introduced by the newest atom versus a full rematch.
fn bench_delta(criterion: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x6a02);
    let mut interpretation = random_edges(&mut rng, 150, 450);
    let watermark = interpretation.len();
    interpretation.insert(atom("e", vec![cst("n3"), cst("n7")]));
    let body = vec![
        atom("e", vec![var("X"), var("Y")]),
        atom("e", vec![var("Y"), var("Z")]),
    ];
    criterion.bench_function("matcher/delta_round/delta", |b| {
        b.iter(|| {
            matcher::all_atom_homomorphisms_delta(
                &body,
                &interpretation,
                &Substitution::new(),
                watermark,
            )
            .len()
        })
    });
    criterion.bench_function("matcher/delta_round/full_rematch", |b| {
        b.iter(|| {
            matcher::all_atom_homomorphisms(&body, &interpretation, &Substitution::new()).len()
        })
    });
}

fn main() {
    let mut criterion = Criterion::default().sample_size(20);
    let mut rows: Vec<(String, u128, u128, f64, usize)> = Vec::new();

    for workload in workloads() {
        let indexed_count = count_indexed(&workload);
        let reference_count = count_reference(&workload);
        assert_eq!(
            indexed_count, reference_count,
            "engines disagree on {}",
            workload.name
        );

        criterion.bench_function(&format!("matcher/{}/indexed", workload.name), |b| {
            b.iter(|| count_indexed(&workload))
        });
        criterion.bench_function(&format!("matcher/{}/reference", workload.name), |b| {
            b.iter(|| count_reference(&workload))
        });

        let indexed = median_duration(20, || count_indexed(&workload));
        let naive = median_duration(20, || count_reference(&workload));
        let speedup = naive.as_secs_f64() / indexed.as_secs_f64().max(f64::MIN_POSITIVE);
        println!(
            "matcher/{}: indexed {indexed:?}, reference {naive:?}, speedup {speedup:.1}x, {indexed_count} homomorphisms",
            workload.name
        );
        rows.push((
            workload.name.to_owned(),
            indexed.as_nanos(),
            naive.as_nanos(),
            speedup,
            indexed_count,
        ));
    }

    // Compile-once vs compile-per-call on the multi-round chain-join delta
    // workload (the chase/grounding round pattern).
    {
        let (base, extra, body) = compile_cache_workload();
        let cached_count = run_delta_rounds(true, &base, &extra, &body);
        let per_call_count = run_delta_rounds(false, &base, &extra, &body);
        assert_eq!(cached_count, per_call_count, "plan cache changed results");
        criterion.bench_function("matcher/compile_cache/cached", |b| {
            b.iter(|| run_delta_rounds(true, &base, &extra, &body))
        });
        criterion.bench_function("matcher/compile_cache/per_call", |b| {
            b.iter(|| run_delta_rounds(false, &base, &extra, &body))
        });
        let cached = median_duration(20, || run_delta_rounds(true, &base, &extra, &body));
        let per_call = median_duration(20, || run_delta_rounds(false, &base, &extra, &body));
        let speedup = per_call.as_secs_f64() / cached.as_secs_f64().max(f64::MIN_POSITIVE);
        println!(
            "matcher/compile_cache: cached {cached:?}, per-call {per_call:?}, speedup {speedup:.1}x, {cached_count} homomorphisms"
        );
        rows.push((
            "compile_cache".to_owned(),
            cached.as_nanos(),
            per_call.as_nanos(),
            speedup,
            cached_count,
        ));
    }

    // Slot-view enumeration vs materialising a substitution per result, over
    // one cached plan (isolates the per-result clone the view removes).
    {
        let mut rng = StdRng::seed_from_u64(0x6a04);
        let interpretation = random_edges(&mut rng, 150, 450);
        let body = vec![
            atom("e", vec![var("X"), var("Y")]),
            atom("e", vec![var("Y"), var("Z")]),
            atom("e", vec![var("Z"), var("W")]),
        ];
        let empty = Substitution::new();
        let plan = CompiledConjunction::compile_atoms(&body, &interpretation);
        let x = var("X");
        let view_count = || {
            let mut count = 0usize;
            plan.for_each(&interpretation, &empty, &mut |binding| {
                if binding.value_of(&x).is_some() {
                    count += 1;
                }
                ControlFlow::Continue(())
            });
            count
        };
        let clone_count = || {
            let mut count = 0usize;
            plan.for_each(&interpretation, &empty, &mut |binding| {
                let substitution = binding.to_substitution();
                if !substitution.is_empty() {
                    count += 1;
                }
                ControlFlow::Continue(())
            });
            count
        };
        let homomorphisms = view_count();
        assert_eq!(homomorphisms, clone_count(), "slot view changed results");
        criterion.bench_function("matcher/slot_view/view", |b| b.iter(view_count));
        criterion.bench_function("matcher/slot_view/clone", |b| b.iter(clone_count));
        let view = median_duration(20, view_count);
        let cloned = median_duration(20, clone_count);
        let speedup = cloned.as_secs_f64() / view.as_secs_f64().max(f64::MIN_POSITIVE);
        println!(
            "matcher/slot_view: view {view:?}, clone {cloned:?}, speedup {speedup:.1}x, {homomorphisms} homomorphisms"
        );
        rows.push((
            "slot_view".to_owned(),
            view.as_nanos(),
            cloned.as_nanos(),
            speedup,
            homomorphisms,
        ));
    }

    // Parallel scaling: chase-round trigger discovery — the (rule, pivot)
    // work items of a semi-naive round — on one worker versus the machine's
    // full parallelism.  The sequential and parallel runs must produce the
    // identical trigger sequence (the deterministic-merge contract); on a
    // single-core machine the two paths coincide and the speedup is ~1.0x,
    // on an n-core machine the discovery round scales with n.
    {
        let (program, instance, delta_watermark) = parallel_scaling_workload();
        let positive = program.positive_part();
        let plans = CompiledRuleSet::from_program(&positive, &instance);
        let discover = |threads: Option<usize>| -> usize {
            parallel::set_thread_override(threads);
            let seeded = triggers_from_compiled(&plans, &instance, 0).len();
            let delta = triggers_from_compiled(&plans, &instance, delta_watermark).len();
            parallel::set_thread_override(None);
            seeded + delta
        };
        let sequential_triggers = {
            parallel::set_thread_override(Some(1));
            let t = triggers_from_compiled(&plans, &instance, 0);
            parallel::set_thread_override(None);
            t
        };
        let parallel_triggers = triggers_from_compiled(&plans, &instance, 0);
        assert_eq!(
            sequential_triggers, parallel_triggers,
            "parallel trigger discovery changed results"
        );
        let trigger_count = discover(Some(1));
        assert_eq!(trigger_count, discover(None), "parallel count diverged");
        criterion.bench_function("matcher/parallel_scaling/parallel", |b| {
            b.iter(|| discover(None))
        });
        criterion.bench_function("matcher/parallel_scaling/sequential", |b| {
            b.iter(|| discover(Some(1)))
        });
        let parallel_time = median_duration(20, || discover(None));
        let sequential_time = median_duration(20, || discover(Some(1)));
        let speedup =
            sequential_time.as_secs_f64() / parallel_time.as_secs_f64().max(f64::MIN_POSITIVE);
        println!(
            "matcher/parallel_scaling: parallel {parallel_time:?}, sequential {sequential_time:?}, speedup {speedup:.1}x, {trigger_count} triggers ({} workers)",
            parallel::num_threads()
        );
        rows.push((
            "parallel_scaling".to_owned(),
            parallel_time.as_nanos(),
            sequential_time.as_nanos(),
            speedup,
            trigger_count,
        ));
    }

    // Server throughput: a long-lived reasoning session fed a stream of
    // small ASSERT deltas — the workload the persistent worker pool exists
    // for.  Each delta is far below the scoped fallback's spawn-amortisation
    // threshold (MIN_PARALLEL_WORK), so the scoped mode runs the rounds
    // sequentially while the pool dispatches them to already-running
    // workers.  On a single-core machine the two paths coincide (~1.0x); on
    // an n-core machine the per-assert delta matching scales with n.
    {
        let program = "e(X, Y), e(Y, Z) -> chain2(X, Z).\
             e(X, Y), e(Y, Z), e(Z, W) -> chain3(X, W).\
             e(X, Y), e(X, Z) -> fanout(Y, Z).\
             e(X, Y), e(Z, Y) -> fanin(X, Z).\
             e(X, Y), e(Y, X) -> mutual(X).\
             e(X, Y), e(Y, Z), e(Z, X) -> triangle(X).";
        let mut rng = StdRng::seed_from_u64(0x6a06);
        let batches: Vec<String> = (0..150)
            .map(|_| {
                let a = rng.gen_range(0..60);
                let b = rng.gen_range(0..60);
                format!("ASSERT e(v{a}, v{b}).")
            })
            .collect();
        let run_stream = |pooled: bool| -> usize {
            ntgd_core::parallel::set_pool_enabled(Some(pooled));
            let mut session = ntgd_server::Session::new(ntgd_server::SessionConfig::default());
            assert!(session.execute(&format!("LOAD {program}")).is_ok());
            for batch in &batches {
                assert!(session.execute(batch).is_ok());
            }
            let atoms = session.instance().expect("chased instance").len();
            ntgd_core::parallel::set_pool_enabled(None);
            atoms
        };
        let pooled_atoms = run_stream(true);
        let scoped_atoms = run_stream(false);
        assert_eq!(pooled_atoms, scoped_atoms, "pool changed session results");
        criterion.bench_function("matcher/server_throughput/pooled", |b| {
            b.iter(|| run_stream(true))
        });
        criterion.bench_function("matcher/server_throughput/scoped", |b| {
            b.iter(|| run_stream(false))
        });
        let pooled = median_duration(20, || run_stream(true));
        let scoped = median_duration(20, || run_stream(false));
        let speedup = scoped.as_secs_f64() / pooled.as_secs_f64().max(f64::MIN_POSITIVE);
        let asserts_per_sec = batches.len() as f64 / pooled.as_secs_f64().max(f64::MIN_POSITIVE);
        println!(
            "matcher/server_throughput: pooled {pooled:?}, scoped-spawn {scoped:?}, speedup {speedup:.1}x, {pooled_atoms} atoms, {asserts_per_sec:.0} asserts/s ({} workers)",
            parallel::num_threads()
        );
        rows.push((
            "server_throughput".to_owned(),
            pooled.as_nanos(),
            scoped.as_nanos(),
            speedup,
            pooled_atoms,
        ));
    }

    // Observability overhead: the server_throughput ASSERT stream once with
    // the obs registry and span timers recording (the default posture) and
    // once with them forced off (the NTGD_OBS=0 posture).  The instruments
    // sit on every chase round, pool batch and request, so this stream is
    // exactly where their cost would show; the gate keeps the overhead
    // within noise (speedup ≈ 1.0, disabled time / instrumented time).
    {
        let program = "e(X, Y), e(Y, Z) -> chain2(X, Z).\
             e(X, Y), e(Y, Z), e(Z, W) -> chain3(X, W).\
             e(X, Y), e(X, Z) -> fanout(Y, Z).\
             e(X, Y), e(Z, Y) -> fanin(X, Z).\
             e(X, Y), e(Y, X) -> mutual(X).\
             e(X, Y), e(Y, Z), e(Z, X) -> triangle(X).";
        let mut rng = StdRng::seed_from_u64(0x6a06);
        let batches: Vec<String> = (0..150)
            .map(|_| {
                let a = rng.gen_range(0..60);
                let b = rng.gen_range(0..60);
                format!("ASSERT e(v{a}, v{b}).")
            })
            .collect();
        let run_stream = |instrumented: bool| -> usize {
            ntgd_core::obs::set_enabled_override(Some(instrumented));
            let mut session = ntgd_server::Session::new(ntgd_server::SessionConfig::default());
            assert!(session.execute(&format!("LOAD {program}")).is_ok());
            for batch in &batches {
                assert!(session.execute(batch).is_ok());
            }
            let atoms = session.instance().expect("chased instance").len();
            ntgd_core::obs::set_enabled_override(None);
            atoms
        };
        let on_atoms = run_stream(true);
        let off_atoms = run_stream(false);
        assert_eq!(on_atoms, off_atoms, "observability changed session results");
        criterion.bench_function("matcher/obs_overhead/instrumented", |b| {
            b.iter(|| run_stream(true))
        });
        criterion.bench_function("matcher/obs_overhead/disabled", |b| {
            b.iter(|| run_stream(false))
        });
        // Interleave the two configurations sample-by-sample: the stream
        // takes tens of milliseconds, so back-to-back blocks of 20 would
        // measure machine drift as instrumentation overhead (or savings).
        let mut on_samples = Vec::with_capacity(20);
        let mut off_samples = Vec::with_capacity(20);
        for _ in 0..20 {
            on_samples.push(time_once(|| run_stream(true)));
            off_samples.push(time_once(|| run_stream(false)));
        }
        let instrumented = median_of(&mut on_samples);
        let disabled = median_of(&mut off_samples);
        let speedup =
            disabled.as_secs_f64() / instrumented.as_secs_f64().max(f64::MIN_POSITIVE);
        let overhead_pct = (1.0 / speedup.max(f64::MIN_POSITIVE) - 1.0) * 100.0;
        println!(
            "matcher/obs_overhead: instrumented {instrumented:?}, disabled {disabled:?}, speedup {speedup:.2}x ({overhead_pct:+.1}% overhead), {on_atoms} atoms"
        );
        rows.push((
            "obs_overhead".to_owned(),
            instrumented.as_nanos(),
            disabled.as_nanos(),
            speedup,
            on_atoms,
        ));
    }

    // Incremental MODELS: a repeated ASSERT+MODELS stream through a session
    // — the workload `ntgd_sms::IncrementalSmsState` exists for.  Every
    // constant is declared up front (`dom` facts), so the candidate domain
    // never changes and each MODELS after the first advances the cached
    // possibly-true closure and grounding from the assert delta; the
    // from-scratch baseline (incremental_models = false, the differential
    // oracle path) rebuilds domain, closure and grounding per request.  The
    // two modes must produce bit-identical MODEL transcripts.
    {
        let mut load = String::from(
            "e(X, Y), e(Y, Z) -> path(X, Z).\
             path(X, Y), e(Y, Z) -> path3(X, Z).\
             e(X, Y), not hub(X) -> spoke(Y).\
             hub(v0).",
        );
        for c in 0..20 {
            load.push_str(&format!(" dom(v{c})."));
        }
        let mut rng = StdRng::seed_from_u64(0x6a07);
        let batches: Vec<String> = (0..30)
            .map(|_| {
                let a = rng.gen_range(0..20);
                let b = rng.gen_range(0..20);
                format!("ASSERT e(v{a}, v{b}).")
            })
            .collect();
        let run_stream = |incremental: bool| -> Vec<String> {
            let mut session = ntgd_server::Session::new(ntgd_server::SessionConfig {
                incremental_models: incremental,
                ..ntgd_server::SessionConfig::default()
            });
            assert!(session.execute(&format!("LOAD {load}")).is_ok());
            let mut transcript = Vec::new();
            for batch in &batches {
                assert!(session.execute(batch).is_ok());
                let models = session.execute("MODELS sms");
                assert!(models.is_ok());
                transcript.extend(models.lines);
            }
            transcript
        };
        let incremental_lines = run_stream(true);
        let scratch_lines = run_stream(false);
        // The terminators coincide too: the incremental state is consulted
        // below the per-generation render cache, so `cached=true` can only
        // appear for repeated identical requests, of which the stream has
        // none.
        assert_eq!(
            incremental_lines, scratch_lines,
            "incremental MODELS changed the transcript"
        );
        let model_lines = incremental_lines
            .iter()
            .filter(|l| l.starts_with("MODEL "))
            .count();
        criterion.bench_function("matcher/incremental_models/incremental", |b| {
            b.iter(|| run_stream(true))
        });
        criterion.bench_function("matcher/incremental_models/scratch", |b| {
            b.iter(|| run_stream(false))
        });
        let incremental_time = median_duration(10, || run_stream(true).len());
        let scratch_time = median_duration(10, || run_stream(false).len());
        let speedup =
            scratch_time.as_secs_f64() / incremental_time.as_secs_f64().max(f64::MIN_POSITIVE);
        println!(
            "matcher/incremental_models: incremental {incremental_time:?}, from-scratch {scratch_time:?}, speedup {speedup:.1}x, {model_lines} model lines over {} asserts",
            batches.len()
        );
        rows.push((
            "incremental_models".to_owned(),
            incremental_time.as_nanos(),
            scratch_time.as_nanos(),
            speedup,
            model_lines,
        ));
    }

    // Shared-base forking: N sessions load the same ontology.  With a
    // shared-base registry the first LOAD chases and freezes the base once
    // and every later LOAD forks it copy-on-write, chasing only its private
    // ASSERT delta on an overlay; privately, every session re-parses,
    // re-compiles and re-chases the whole ontology.  The two fleets must
    // produce bit-identical transcripts (the shared-base determinism
    // contract — STATS is not part of the stream, so the full line-for-line
    // transcript is compared).
    {
        const SESSIONS: usize = 8;
        let mut rng = StdRng::seed_from_u64(0x6a08);
        let mut load = String::from(
            "LOAD e(X, Y) -> n(X). e(X, Y) -> n(Y).\
             n(X) -> labelled(X, L).\
             e(X, Y), e(Y, Z) -> p2(X, Z).\
             p2(X, Y), e(Y, Z) -> p3(X, Z).\
             p3(X, Y), e(Y, Z) -> p4(X, Z).",
        );
        for _ in 0..300 {
            let a = rng.gen_range(0..80);
            let b = rng.gen_range(0..80);
            load.push_str(&format!(" e(v{a}, v{b})."));
        }
        let deltas: Vec<String> = (0..SESSIONS)
            .map(|s| format!("ASSERT e(w{s}, v{}).", s % 80))
            .collect();
        // incremental_models off on both sides: the fleets never call
        // MODELS, so neither should pay for (or skip) grounding state — the
        // comparison isolates chase sharing.
        let run_fleet = |forked: bool| -> (Vec<String>, usize) {
            let registry = forked.then(ntgd_server::BaseRegistry::new).map(Arc::new);
            let mut transcript = Vec::new();
            let mut atoms = 0usize;
            for delta in &deltas {
                let mut session = ntgd_server::Session::new(ntgd_server::SessionConfig {
                    incremental_models: false,
                    base_registry: registry.clone(),
                    ..ntgd_server::SessionConfig::default()
                });
                for command in [load.as_str(), delta.as_str(), "QUERY ?(X) :- n(X)."] {
                    let response = session.execute(command);
                    assert!(
                        response.is_ok(),
                        "fleet command failed: {:?}",
                        response.lines
                    );
                    transcript.extend(response.lines);
                }
                atoms = session.instance().expect("chased instance").len();
            }
            (transcript, atoms)
        };
        let (forked_transcript, forked_atoms) = run_fleet(true);
        let (private_transcript, private_atoms) = run_fleet(false);
        assert_eq!(
            forked_transcript, private_transcript,
            "shared-base forking changed session transcripts"
        );
        assert_eq!(forked_atoms, private_atoms);
        criterion.bench_function("matcher/shared_base_fork/forked", |b| {
            b.iter(|| run_fleet(true).1)
        });
        criterion.bench_function("matcher/shared_base_fork/private", |b| {
            b.iter(|| run_fleet(false).1)
        });
        let forked_time = median_duration(10, || run_fleet(true).1);
        let private_time = median_duration(10, || run_fleet(false).1);
        let speedup = private_time.as_secs_f64() / forked_time.as_secs_f64().max(f64::MIN_POSITIVE);
        println!(
            "matcher/shared_base_fork: forked {forked_time:?}, private {private_time:?}, speedup {speedup:.1}x, {forked_atoms} atoms over {SESSIONS} sessions"
        );
        rows.push((
            "shared_base_fork".to_owned(),
            forked_time.as_nanos(),
            private_time.as_nanos(),
            speedup,
            forked_atoms,
        ));
    }

    // The decidability front door: every LOAD classifies its program against
    // the landscape (`ntgd_classes::classify`) and the verdict decides the
    // chase/null budgets, but registry forks *inherit* the registered verdict
    // instead of reclassifying.  This row prices that design on the four
    // loadgen family templates (the shapes `ntgd-load` drives): classify
    // once per family (the registry path) versus once per LOAD of an
    // 8-session fleet (the reclassify-every-time strawman).  All four
    // families must come back chase-terminating — the verdict that lifts the
    // step budget for every load-harness run.
    {
        const FLEET: usize = 8;
        let families: [(&str, &str); 4] = [
            (
                "chain",
                "e(X, Y) -> p1(X, Y). p1(X, Y), e(Y, Z) -> p2(X, Z).\
                 p2(X, Y), e(Y, Z) -> p3(X, Z).",
            ),
            ("star", "r1(X, Y1), r2(X, Y2), r3(X, Y3) -> hub(X)."),
            (
                "existential",
                "node(X0) -> owns(X0, V), t1(V). t1(V) -> link1(V, W), t2(W).\
                 t2(V) -> link2(V, W), t3(W).",
            ),
            (
                "disjunctive",
                "node(X0) -> red(X0) | green(X0). node(X0) -> seen(X0).\
                 red(X) -> shade1a(X) | shade1b(X).",
            ),
        ];
        // Disjunctive payloads classify their positive-conjunctive
        // transform, exactly like the session's LOAD path.
        let programs: Vec<(&str, ntgd_core::Program)> = families
            .iter()
            .map(|(name, text)| {
                let unit = ntgd_parser::parse_unit(text).expect("family template parses");
                let program = match unit.program() {
                    Some(program) => program,
                    None => unit
                        .disjunctive_program()
                        .expect("family template is consistent")
                        .positive_conjunctive_part(),
                };
                (*name, program)
            })
            .collect();
        let classify_fleet = |per_load: bool| -> usize {
            let mut memberships = 0usize;
            for (name, program) in &programs {
                for _ in 0..if per_load { FLEET } else { 1 } {
                    let report = ntgd_classes::classify(std::hint::black_box(program));
                    assert_eq!(
                        report.verdict(),
                        ntgd_classes::ClassVerdict::Terminating,
                        "{name} family must be chase-terminating"
                    );
                    memberships += report.entries().iter().filter(|(_, m)| *m).count();
                }
            }
            memberships
        };
        let memberships = classify_fleet(false);
        criterion.bench_function("matcher/classes_landscape/inherited", |b| {
            b.iter(|| classify_fleet(false))
        });
        criterion.bench_function("matcher/classes_landscape/reclassified", |b| {
            b.iter(|| classify_fleet(true))
        });
        let inherited = median_duration(40, || classify_fleet(false));
        let reclassified = median_duration(40, || classify_fleet(true));
        let speedup =
            reclassified.as_secs_f64() / inherited.as_secs_f64().max(f64::MIN_POSITIVE);
        println!(
            "matcher/classes_landscape: classify-once {inherited:?}, per-LOAD {reclassified:?}, speedup {speedup:.1}x over a {FLEET}-session fleet, {memberships} memberships across {} families",
            families.len()
        );
        rows.push((
            "classes_landscape".to_owned(),
            inherited.as_nanos(),
            reclassified.as_nanos(),
            speedup,
            memberships,
        ));
    }

    bench_delta(&mut criterion);

    let mut json = String::from(
        "{\n  \"benchmark\": \"matcher hot path: indexed join engine, plan cache and slot views vs per-call compilation and the naive reference matcher\",\n  \"command\": \"cargo bench --bench matcher\",\n  \"workloads\": [\n",
    );
    for (i, (name, indexed_ns, reference_ns, speedup, homomorphisms)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"indexed_median_ns\": {indexed_ns}, \"reference_median_ns\": {reference_ns}, \"speedup\": {speedup:.1}, \"homomorphisms\": {homomorphisms}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matcher.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => eprintln!("could not write {path}: {error}"),
    }
}
