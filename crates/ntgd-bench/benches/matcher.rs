//! Criterion benchmark for the matcher hot path: the indexed join engine of
//! `ntgd_core::matcher` versus the retained naive reference matcher
//! (`ntgd_core::matcher::reference`) on chain joins, star joins and
//! negation-heavy conjunctions.
//!
//! Besides the criterion-style report, the benchmark records the measured
//! medians and speedups in `BENCH_matcher.json` at the repository root, so
//! the before/after numbers of the indexed-join-engine PR stay reproducible
//! with `cargo bench --bench matcher`.

use std::time::{Duration, Instant};

use criterion::Criterion;
use ntgd_core::matcher::{self, reference};
use ntgd_core::{atom, cst, var, Interpretation, Literal, Substitution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Workload {
    name: &'static str,
    interpretation: Interpretation,
    conjunction: Vec<Literal>,
}

/// A sparse random edge relation.
fn random_edges(rng: &mut StdRng, nodes: usize, edges: usize) -> Interpretation {
    let mut interpretation = Interpretation::new();
    while interpretation.len() < edges {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        interpretation.insert(atom(
            "e",
            vec![cst(&format!("n{a}")), cst(&format!("n{b}"))],
        ));
    }
    interpretation
}

fn workloads() -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(0x6a01);
    let mut out = Vec::new();

    // Chain join: e(X,Y), e(Y,Z), e(Z,W) over a sparse random graph.  The
    // indexed engine probes (e, 0, y) for the bound joint variables; the
    // reference matcher rescans all edges at every level.
    let chain = random_edges(&mut rng, 150, 450);
    out.push(Workload {
        name: "chain_join",
        interpretation: chain,
        conjunction: vec![
            Literal::positive(atom("e", vec![var("X"), var("Y")])),
            Literal::positive(atom("e", vec![var("Y"), var("Z")])),
            Literal::positive(atom("e", vec![var("Z"), var("W")])),
        ],
    });

    // Star join: a large spoke relation joined with a tiny selective one.
    // The planner must reorder to start from the selective predicate.
    let mut star = Interpretation::new();
    for spoke in 0..2_000 {
        star.insert(atom(
            "likes",
            vec![cst(&format!("u{}", spoke % 50)), cst(&format!("i{spoke}"))],
        ));
    }
    for marked in 0..5 {
        star.insert(atom("mark", vec![cst(&format!("i{}", marked * 311))]));
    }
    out.push(Workload {
        name: "star_join",
        interpretation: star,
        conjunction: vec![
            Literal::positive(atom("likes", vec![var("X"), var("Y")])),
            Literal::positive(atom("mark", vec![var("Y")])),
        ],
    });

    // Negation: a join filtered by two negative literals (safe: all
    // variables are bound positively).
    let mut negation = random_edges(&mut rng, 120, 360);
    for k in 0..60 {
        negation.insert(atom("blocked", vec![cst(&format!("n{}", k * 2))]));
    }
    out.push(Workload {
        name: "negation",
        interpretation: negation,
        conjunction: vec![
            Literal::positive(atom("e", vec![var("X"), var("Y")])),
            Literal::positive(atom("e", vec![var("Y"), var("Z")])),
            Literal::negative(atom("blocked", vec![var("X")])),
            Literal::negative(atom("e", vec![var("Z"), var("X")])),
        ],
    });

    out
}

fn count_indexed(workload: &Workload) -> usize {
    matcher::all_homomorphisms(
        &workload.conjunction,
        &workload.interpretation,
        &Substitution::new(),
    )
    .len()
}

fn count_reference(workload: &Workload) -> usize {
    reference::all_homomorphisms(
        &workload.conjunction,
        &workload.interpretation,
        &Substitution::new(),
    )
    .len()
}

/// Median wall-clock duration of `samples` runs of `routine`.
fn median_duration<F: FnMut() -> usize>(samples: usize, mut routine: F) -> Duration {
    std::hint::black_box(routine());
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(routine());
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// One delta-matching round: how long it takes to find the homomorphisms
/// introduced by the newest atom versus a full rematch.
fn bench_delta(criterion: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x6a02);
    let mut interpretation = random_edges(&mut rng, 150, 450);
    let watermark = interpretation.len();
    interpretation.insert(atom("e", vec![cst("n3"), cst("n7")]));
    let body = vec![
        atom("e", vec![var("X"), var("Y")]),
        atom("e", vec![var("Y"), var("Z")]),
    ];
    criterion.bench_function("matcher/delta_round/delta", |b| {
        b.iter(|| {
            matcher::all_atom_homomorphisms_delta(
                &body,
                &interpretation,
                &Substitution::new(),
                watermark,
            )
            .len()
        })
    });
    criterion.bench_function("matcher/delta_round/full_rematch", |b| {
        b.iter(|| {
            matcher::all_atom_homomorphisms(&body, &interpretation, &Substitution::new()).len()
        })
    });
}

fn main() {
    let mut criterion = Criterion::default().sample_size(20);
    let mut rows: Vec<(String, u128, u128, f64, usize)> = Vec::new();

    for workload in workloads() {
        let indexed_count = count_indexed(&workload);
        let reference_count = count_reference(&workload);
        assert_eq!(
            indexed_count, reference_count,
            "engines disagree on {}",
            workload.name
        );

        criterion.bench_function(&format!("matcher/{}/indexed", workload.name), |b| {
            b.iter(|| count_indexed(&workload))
        });
        criterion.bench_function(&format!("matcher/{}/reference", workload.name), |b| {
            b.iter(|| count_reference(&workload))
        });

        let indexed = median_duration(20, || count_indexed(&workload));
        let naive = median_duration(20, || count_reference(&workload));
        let speedup = naive.as_secs_f64() / indexed.as_secs_f64().max(f64::MIN_POSITIVE);
        println!(
            "matcher/{}: indexed {indexed:?}, reference {naive:?}, speedup {speedup:.1}x, {indexed_count} homomorphisms",
            workload.name
        );
        rows.push((
            workload.name.to_owned(),
            indexed.as_nanos(),
            naive.as_nanos(),
            speedup,
            indexed_count,
        ));
    }

    bench_delta(&mut criterion);

    let mut json = String::from(
        "{\n  \"benchmark\": \"matcher hot path: indexed join engine vs naive reference matcher\",\n  \"command\": \"cargo bench --bench matcher\",\n  \"workloads\": [\n",
    );
    for (i, (name, indexed_ns, reference_ns, speedup, homomorphisms)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"indexed_median_ns\": {indexed_ns}, \"reference_median_ns\": {reference_ns}, \"speedup\": {speedup:.1}, \"homomorphisms\": {homomorphisms}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matcher.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => eprintln!("could not write {path}: {error}"),
    }
}
