//! Criterion benchmark for experiment E4: data-complexity shape of
//! SMS-QAns(WATGD¬) (Theorem 6) against the polynomial positive-chase
//! baseline, as the database grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_data_complexity");
    for &n in &[1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("sms_qans", n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(ntgd_bench::e4_data_complexity(n)))
        });
        let db = ntgd_bench::e4_database(n);
        let program = ntgd_bench::e4_program();
        group.bench_with_input(BenchmarkId::new("positive_chase", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(ntgd_chase::restricted_chase(
                    &db,
                    &program,
                    &ntgd_chase::ChaseConfig::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
