//! Criterion benchmark for experiment E9: the declarative applications of
//! Section 7.1 — consistent query answering over subset repairs and robust
//! graph colouring — validated against brute force.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("e9_applications", |b| {
        b.iter(|| std::hint::black_box(ntgd_bench::e9_applications()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
