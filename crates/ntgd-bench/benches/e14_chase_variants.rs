//! Criterion benchmark for experiment E14: restricted vs Skolem vs oblivious
//! chase on the Example-1 program as the database grows, plus the core
//! computation of the Skolem-chase result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntgd_chase::{core_of, oblivious_chase, restricted_chase, skolem_chase, ChaseConfig};
use ntgd_core::{atom, cst, Database};

fn database(n: usize) -> Database {
    let mut facts = Vec::new();
    for i in 0..n {
        facts.push(atom("person", vec![cst(&format!("p{i}"))]));
    }
    facts.push(atom("hasFather", vec![cst("p0"), cst("dad")]));
    Database::from_facts(facts).expect("ground facts")
}

fn bench(c: &mut Criterion) {
    let program = ntgd_bench::example1_program();
    let config = ChaseConfig::default();
    let mut group = c.benchmark_group("e14_chase_variants");
    for &n in &[5usize, 20, 50] {
        let db = database(n);
        group.bench_with_input(BenchmarkId::new("restricted", n), &db, |b, db| {
            b.iter(|| std::hint::black_box(restricted_chase(db, &program, &config).instance.len()))
        });
        group.bench_with_input(BenchmarkId::new("skolem", n), &db, |b, db| {
            b.iter(|| std::hint::black_box(skolem_chase(db, &program, &config).instance.len()))
        });
        group.bench_with_input(BenchmarkId::new("oblivious", n), &db, |b, db| {
            b.iter(|| std::hint::black_box(oblivious_chase(db, &program, &config).instance.len()))
        });
    }
    for &n in &[3usize, 6] {
        let db = database(n);
        let skolem = skolem_chase(&db, &program, &config).instance;
        group.bench_with_input(BenchmarkId::new("core_of_skolem", n), &skolem, |b, i| {
            b.iter(|| std::hint::black_box(core_of(i).len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
