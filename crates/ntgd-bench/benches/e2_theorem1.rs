//! Criterion benchmark for experiment E2: Theorem 1 (LP = SO on Skolemized
//! programs) — comparing the stable-model sets of the two engines on random
//! existential-free normal programs.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("e2_theorem1", |b| {
        b.iter(|| std::hint::black_box(ntgd_bench::e2_theorem1(5, 42)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
