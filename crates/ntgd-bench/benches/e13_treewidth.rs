//! Criterion benchmark for experiment E13: treewidth of stable models of a
//! weakly-acyclic program (flat, by the stable tree model property) versus
//! the treewidth of grid interpretations (growing with the grid side), plus
//! the exact-vs-heuristic treewidth algorithms themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntgd_core::{atom, cst, Interpretation};
use ntgd_treewidth::{exact_treewidth, min_fill_decomposition, GaifmanGraph};

fn grid(n: usize) -> GaifmanGraph {
    let mut atoms = Vec::new();
    let name = |r: usize, c: usize| cst(&format!("g{r}_{c}"));
    for r in 0..n {
        for c in 0..n {
            if c + 1 < n {
                atoms.push(atom("edge", vec![name(r, c), name(r, c + 1)]));
            }
            if r + 1 < n {
                atoms.push(atom("edge", vec![name(r, c), name(r + 1, c)]));
            }
        }
    }
    GaifmanGraph::of_interpretation(&Interpretation::from_atoms(atoms))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_treewidth");
    for &n in &[2usize, 3, 4] {
        let graph = grid(n);
        group.bench_with_input(BenchmarkId::new("min_fill_grid", n), &graph, |b, g| {
            b.iter(|| std::hint::black_box(min_fill_decomposition(g).width()))
        });
        if n <= 4 {
            group.bench_with_input(BenchmarkId::new("exact_grid", n), &graph, |b, g| {
                b.iter(|| std::hint::black_box(exact_treewidth(g)))
            });
        }
    }
    group.finish();

    c.bench_function("e13_stable_model_vs_grid", |b| {
        b.iter(|| std::hint::black_box(ntgd_bench::e13_treewidth(3, 3)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
