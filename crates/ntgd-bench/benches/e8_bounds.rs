//! Criterion benchmark for experiment E8: model-size bound (Lemma 7 /
//! Proposition 9) — enumerating all stable models and comparing against the
//! chase bound as the database grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_bounds");
    for &n in &[1usize, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(ntgd_bench::e8_bounds(n)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
