//! Criterion benchmark for experiment E7: the Theorem 15/16 translation from
//! disjunctive Datalog to WATGD¬ — cost of the translation and of the
//! weak-acyclicity check of its output (the end-to-end answer equivalence is
//! checked by the experiments binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntgd_parser::parse_unit;
use std::fmt::Write as _;

fn datalog_query(colours: usize) -> ntgd_disjunction::DatalogQuery {
    let mut head = String::new();
    for c in 0..colours {
        if c > 0 {
            head.push_str(" | ");
        }
        let _ = write!(head, "colour{c}(X)");
    }
    let mut text = format!("node(X) -> {head}.");
    for c in 0..colours {
        let _ = write!(text, " edge(X, Y), colour{c}(X), colour{c}(Y) -> clash.");
    }
    text.push_str(" clash -> q.");
    let program = parse_unit(&text)
        .expect("datalog program parses")
        .disjunctive_program()
        .expect("consistent schema");
    ntgd_disjunction::DatalogQuery::new(program, ntgd_core::Symbol::intern("q"))
        .expect("valid datalog query")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_datalog");
    for &colours in &[2usize, 4, 8] {
        let query = datalog_query(colours);
        group.bench_with_input(
            BenchmarkId::new("datalog_to_watgd", colours),
            &query,
            |b, q| b.iter(|| std::hint::black_box(ntgd_disjunction::datalog_to_watgd(q))),
        );
        let translated = ntgd_disjunction::datalog_to_watgd(&query).expect("translation");
        group.bench_with_input(
            BenchmarkId::new("weak_acyclicity_of_translation", colours),
            &translated.program,
            |b, p| b.iter(|| std::hint::black_box(ntgd_classes::is_weakly_acyclic(p))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
