//! Criterion benchmark for experiment E5: 2-QBF∃ solved through the
//! Section 5.3 encoding (brave/cautious stable-model reasoning) vs. brute
//! force.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let formulas: Vec<ntgd_encodings::TwoQbf> = (0..3)
        .map(|_| ntgd_encodings::TwoQbf::random(&mut rng, 1, 1, 2))
        .collect();
    c.bench_function("e5_qbf_via_sms", |b| {
        b.iter(|| {
            for f in &formulas {
                std::hint::black_box(f.solve_via_sms().expect("solves"));
            }
        })
    });
    c.bench_function("e5_qbf_brute_force", |b| {
        b.iter(|| {
            for f in &formulas {
                std::hint::black_box(f.brute_force_satisfiable());
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
