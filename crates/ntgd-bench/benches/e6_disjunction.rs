//! Criterion benchmark for experiment E6: the Lemma 13 disjunction
//! elimination — cost of the translation itself on colouring programs of
//! growing size (the end-to-end answer equivalence is checked by the
//! experiments binary, which performs the full counter-model exhaustion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntgd_parser::parse_unit;
use std::fmt::Write as _;

fn colouring_program(colours: usize) -> ntgd_core::DisjunctiveProgram {
    let mut head = String::new();
    for c in 0..colours {
        if c > 0 {
            head.push_str(" | ");
        }
        let _ = write!(head, "colour{c}(X)");
    }
    let mut text = format!("node(X) -> {head}.");
    for c in 0..colours {
        let _ = write!(text, " edge(X, Y), colour{c}(X), colour{c}(Y) -> clash.");
    }
    parse_unit(&text)
        .expect("colouring program parses")
        .disjunctive_program()
        .expect("consistent schema")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_disjunction");
    for &colours in &[2usize, 4, 8] {
        let program = colouring_program(colours);
        group.bench_with_input(
            BenchmarkId::new("eliminate_disjunction", colours),
            &program,
            |b, p| b.iter(|| std::hint::black_box(ntgd_disjunction::eliminate_disjunction(p))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
