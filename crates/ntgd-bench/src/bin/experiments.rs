//! Regenerates every experiment row of `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p ntgd-bench --bin experiments [--eN ...]
//! ```
//!
//! Without arguments every experiment is run; with `--e1 --e5 ...` only the
//! selected ones.

use std::time::Instant;

fn wants(args: &[String], key: &str) -> bool {
    args.is_empty() || args.iter().any(|a| a == key)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if wants(&args, "--e1") {
        println!("== E1: semantic comparison on Example 1 (person/hasFather) ==");
        println!(
            "{:<40} {:<15} {:<15} {:<15}",
            "query", "LP", "chase [3]", "new SMS"
        );
        for row in ntgd_bench::e1_semantics() {
            println!(
                "{:<40} {:<15} {:<15} {:<15}",
                row.query, row.lp, row.operational, row.sms
            );
        }
        println!();
    }

    if wants(&args, "--e2") {
        let start = Instant::now();
        let (samples, agreements) = ntgd_bench::e2_theorem1(10, 42);
        println!("== E2: Theorem 1 (LP = SO on Skolemized programs) ==");
        println!(
            "random existential-free programs checked: {samples}, stable-model sets equal: {agreements} ({:?})",
            start.elapsed()
        );
        println!();
    }

    if wants(&args, "--e3") {
        println!("== E3: syntactic classes (Definition 3, Figure 1) ==");
        println!(
            "{:<22} {:<16} {:<10} {:<10}",
            "rule set", "weakly-acyclic", "sticky", "guarded"
        );
        for row in ntgd_bench::e3_classes() {
            println!(
                "{:<22} {:<16} {:<10} {:<10}",
                row.name, row.weakly_acyclic, row.sticky, row.guarded
            );
        }
        println!();
    }

    if wants(&args, "--e4") {
        println!("== E4: data complexity shape (Theorem 6) ==");
        println!(
            "{:<10} {:<18} {:<18} {:<14}",
            "|D|", "SMS-QAns time", "chase time", "chase size"
        );
        for n in [1usize, 2, 3, 4] {
            let start = Instant::now();
            let (db_size, _answer, chase_size) = ntgd_bench::e4_data_complexity(n);
            let sms_time = start.elapsed();
            let db = ntgd_bench::e4_database(n);
            let program = ntgd_bench::e4_program();
            let start = Instant::now();
            let _ =
                ntgd_chase::restricted_chase(&db, &program, &ntgd_chase::ChaseConfig::default());
            let chase_time = start.elapsed();
            println!(
                "{:<10} {:<18} {:<18} {:<14}",
                db_size,
                format!("{sms_time:?}"),
                format!("{chase_time:?}"),
                chase_size
            );
        }
        println!();
    }

    if wants(&args, "--e5") {
        println!("== E5: 2-QBF via the Section 5.3 encoding ==");
        let start = Instant::now();
        let (instances, agreements) = ntgd_bench::e5_qbf(5, 7);
        println!(
            "random 2-QBF instances: {instances}, SMS agrees with brute force: {agreements} ({:?})",
            start.elapsed()
        );
        println!();
    }

    if wants(&args, "--e6") {
        println!("== E6: disjunction elimination (Lemma 13 / Theorem 12) ==");
        let (direct, translated) = ntgd_bench::e6_disjunction();
        println!("brave answer direct: {direct}, via translation: {translated} (must agree)");
        println!();
    }

    if wants(&args, "--e7") {
        println!("== E7: disjunctive Datalog translation (Theorem 15/16) ==");
        let (weakly_acyclic, direct, translated) = ntgd_bench::e7_datalog();
        println!(
            "translated program weakly acyclic: {weakly_acyclic}; brave answer direct: {direct}, translated: {translated}"
        );
        println!();
    }

    if wants(&args, "--e8") {
        println!("== E8: model-size bound (Lemma 7 / Proposition 9) ==");
        println!("{:<10} {:<18} {:<18}", "|D|", "max |M+|", "chase bound");
        for n in [1usize, 2, 3] {
            let (max_model, bound) = ntgd_bench::e8_bounds(n);
            println!(
                "{:<10} {:<18} {:<18}",
                ntgd_bench::e4_database(n).len(),
                max_model,
                bound
            );
        }
        println!();
    }

    if wants(&args, "--e9") {
        println!("== E9: applications (CQA over subset repairs, robust colouring) ==");
        let (cqa, robust) = ntgd_bench::e9_applications();
        println!("CQA declarative == brute force: {cqa}");
        println!("robust colouring declarative == brute force: {robust}");
        println!();
    }

    if wants(&args, "--e10") {
        println!("== E10: W-Stability check cost (Section 5.2) ==");
        println!("{:<10} {:<12} {:<14}", "persons", "|M+|", "check time");
        for n in [2usize, 4, 6, 8] {
            let start = Instant::now();
            let size = ntgd_bench::e10_stability(n);
            println!(
                "{:<10} {:<12} {:<14}",
                n,
                size,
                format!("{:?}", start.elapsed())
            );
        }
        println!();
    }

    if wants(&args, "--e11") {
        println!("== E11: equality-friendly WFS [21] vs the new SMS (Examples 2-3) ==");
        println!("{:<40} {:<15} {:<15}", "query", "EFWFS", "new SMS");
        for row in ntgd_bench::e11_efwfs() {
            println!("{:<40} {:<15} {:<15}", row.query, row.efwfs, row.sms);
        }
        println!();
    }

    if wants(&args, "--e12") {
        println!(
            "== E12: decidability landscape (acyclicity notions and guardedness fragments) =="
        );
        println!(
            "{:<22} {:<6} {:<6} {:<6} {:<6} {:<8} {:<9} {:<9} {:<8}",
            "rule set", "WA", "JA", "MFA", "aGRD", "sticky", "guarded", "w-guard", "fr-guard"
        );
        for row in ntgd_bench::e12_landscape() {
            let r = row.report;
            println!(
                "{:<22} {:<6} {:<6} {:<6} {:<6} {:<8} {:<9} {:<9} {:<8}",
                row.name,
                r.weakly_acyclic,
                r.jointly_acyclic,
                r.model_faithful_acyclic,
                r.agrd,
                r.sticky,
                r.guarded,
                r.weakly_guarded,
                r.frontier_guarded
            );
        }
        println!();
    }

    if wants(&args, "--e13") {
        println!("== E13: stable tree model property (treewidth of models vs grid gadgets) ==");
        println!(
            "{:<10} {:<26} {:<10} {:<16}",
            "persons", "max stable-model width", "grid n", "grid treewidth"
        );
        for (persons, grid) in [(2usize, 2usize), (3, 3), (3, 4)] {
            let start = Instant::now();
            let (model_width, grid_width) = ntgd_bench::e13_treewidth(persons, grid);
            println!(
                "{:<10} {:<26} {:<10} {:<16} ({:?})",
                persons,
                model_width,
                grid,
                grid_width,
                start.elapsed()
            );
        }
        println!();
    }

    if wants(&args, "--e14") {
        println!("== E14: chase variants and cores on the Example-1 program ==");
        println!(
            "{:<10} {:<12} {:<12} {:<12} {:<10}",
            "persons", "restricted", "skolem", "oblivious", "core"
        );
        for n in [2usize, 5, 10] {
            let (restricted, skolem, oblivious, core) = ntgd_bench::e14_chase_variants(n);
            println!(
                "{:<10} {:<12} {:<12} {:<12} {:<10}",
                n, restricted, skolem, oblivious, core
            );
        }
        println!();
    }
}
