//! Benchmark regression gate for `BENCH_matcher.json`.
//!
//! Compares the speedups of a freshly produced benchmark record against the
//! committed baseline and fails (exit code 1) when any workload present in
//! both regressed by more than 20%.  Workloads only present in the fresh
//! record are allowed (new benchmarks); workloads that disappeared fail the
//! gate (a silently dropped benchmark is indistinguishable from a
//! regression).
//!
//! Usage (CI runs this after `cargo bench -p ntgd-bench --bench matcher`
//! rewrites `BENCH_matcher.json`; locally, copy the committed file aside
//! first):
//!
//! ```text
//! cp BENCH_matcher.json /tmp/bench_baseline.json
//! cargo bench -p ntgd-bench --bench matcher
//! cargo run -p ntgd-bench --bin bench_gate -- /tmp/bench_baseline.json BENCH_matcher.json
//! ```
//!
//! The parser is deliberately minimal: it reads the `"name"`/`"speedup"`
//! pairs of the one-workload-per-line format the matcher benchmark emits
//! (the workspace is offline, so no JSON crate is available).

use std::process::ExitCode;

/// Maximum tolerated relative loss of a recorded speedup (20%).
const TOLERATED_REGRESSION: f64 = 0.20;

/// Extracts `(name, speedup)` pairs from a benchmark record.
fn parse_speedups(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(speedup) = field_num(line, "speedup") else {
            continue;
        };
        out.push((name, speedup));
    }
    out
}

/// The string value of `"key": "..."` on a line, if present.
fn field_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let rest = &line[line.find(&marker)? + marker.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_owned())
}

/// The numeric value of `"key": <number>` on a line, if present.
///
/// Accepts alphabetic number tokens (`NaN`, `inf`, `-inf`) as well: a
/// corrupted record must be *seen* (and rejected by [`invalid_speedups`]),
/// not silently skipped as an unparseable line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let rest = line[line.find(&marker)? + marker.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The workloads whose recorded speedup cannot gate anything: NaN compares
/// false against every threshold (`new < base * 0.8` is false for NaN, so a
/// corrupted record would silently greenlight CI), infinities are
/// measurement failures, and a non-positive speedup is not a speedup.
fn invalid_speedups(records: &[(String, f64)]) -> Vec<(String, f64)> {
    records
        .iter()
        .filter(|(_, speedup)| !speedup.is_finite() || *speedup <= 0.0)
        .cloned()
        .collect()
}

/// Named workloads carrying a `"speedup":` field whose value does not parse
/// as a number at all (e.g. `2x4.8`).  [`parse_speedups`] necessarily skips
/// them, which would otherwise let the workload vanish from a baseline and
/// escape the gate entirely (fresh-only workloads are allowed).
fn malformed_speedups(text: &str) -> Vec<String> {
    text.lines()
        .filter_map(|line| {
            let name = field_str(line, "name")?;
            if line.contains("\"speedup\":") && field_num(line, "speedup").is_none() {
                Some(name)
            } else {
                None
            }
        })
        .collect()
}

/// The regressions (name, baseline, fresh) beyond the tolerated loss, plus
/// the workloads missing from the fresh record.
fn regressions(
    baseline: &[(String, f64)],
    fresh: &[(String, f64)],
) -> (Vec<(String, f64, f64)>, Vec<String>) {
    let mut regressed = Vec::new();
    let mut missing = Vec::new();
    for (name, base) in baseline {
        match fresh.iter().find(|(n, _)| n == name) {
            None => missing.push(name.clone()),
            Some((_, new)) => {
                if *new < base * (1.0 - TOLERATED_REGRESSION) {
                    regressed.push((name.clone(), *base, *new));
                }
            }
        }
    }
    (regressed, missing)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(error) => {
            eprintln!("bench_gate: cannot read {path}: {error}");
            None
        }
    };
    let (Some(baseline_text), Some(fresh_text)) = (read(baseline_path), read(fresh_path)) else {
        return ExitCode::from(2);
    };
    let baseline = parse_speedups(&baseline_text);
    let fresh = parse_speedups(&fresh_text);
    if baseline.is_empty() {
        eprintln!("bench_gate: no workloads found in baseline {baseline_path}");
        return ExitCode::from(2);
    }
    // Corrupted records cannot gate anything: reject them outright instead
    // of letting NaN/inf/zero speedups slip through the regression compare
    // (or unparseable ones vanish from the baseline and escape it).
    let mut corrupted = false;
    for (label, records, text) in [
        ("baseline", &baseline, &baseline_text),
        ("fresh", &fresh, &fresh_text),
    ] {
        for (name, speedup) in invalid_speedups(records) {
            eprintln!(
                "bench_gate: INVALID {label} record {name}: speedup {speedup} \
                 is not a finite positive number"
            );
            corrupted = true;
        }
        for name in malformed_speedups(text) {
            eprintln!("bench_gate: INVALID {label} record {name}: unparseable speedup value");
            corrupted = true;
        }
    }
    if corrupted {
        return ExitCode::from(2);
    }

    println!("workload             baseline   fresh");
    for (name, base) in &baseline {
        let new = fresh
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| format!("{s:.1}x"))
            .unwrap_or_else(|| "MISSING".to_owned());
        println!("{name:<20} {base:>7.1}x {new:>7}");
    }
    for (name, new) in &fresh {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("{name:<20} {:>8} {new:>6.1}x (new)", "-");
        }
    }

    let (regressed, missing) = regressions(&baseline, &fresh);
    let mut failed = false;
    for (name, base, new) in &regressed {
        eprintln!(
            "bench_gate: FAIL {name}: speedup {new:.1}x regressed more than \
             {:.0}% below the baseline {base:.1}x",
            TOLERATED_REGRESSION * 100.0
        );
        failed = true;
    }
    for name in &missing {
        eprintln!("bench_gate: FAIL {name}: workload missing from the fresh record");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "bench_gate: OK ({} workloads within {:.0}% of the baseline)",
            baseline.len(),
            TOLERATED_REGRESSION * 100.0
        );
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RECORD: &str = r#"{
  "benchmark": "matcher",
  "workloads": [
    {"name": "chain_join", "indexed_median_ns": 1, "reference_median_ns": 2, "speedup": 25.7, "homomorphisms": 4237},
    {"name": "slot_view", "indexed_median_ns": 1, "reference_median_ns": 2, "speedup": 3.2, "homomorphisms": 4329}
  ]
}"#;

    #[test]
    fn parses_names_and_speedups() {
        let parsed = parse_speedups(RECORD);
        assert_eq!(
            parsed,
            vec![
                ("chain_join".to_owned(), 25.7),
                ("slot_view".to_owned(), 3.2)
            ]
        );
    }

    #[test]
    fn tolerates_small_losses_and_new_workloads() {
        let baseline = vec![("a".to_owned(), 10.0)];
        let fresh = vec![("a".to_owned(), 8.5), ("b".to_owned(), 1.0)];
        let (regressed, missing) = regressions(&baseline, &fresh);
        assert!(regressed.is_empty());
        assert!(missing.is_empty());
    }

    #[test]
    fn flags_large_regressions_and_missing_workloads() {
        let baseline = vec![("a".to_owned(), 10.0), ("gone".to_owned(), 2.0)];
        let fresh = vec![("a".to_owned(), 7.9)];
        let (regressed, missing) = regressions(&baseline, &fresh);
        assert_eq!(regressed, vec![("a".to_owned(), 10.0, 7.9)]);
        assert_eq!(missing, vec!["gone".to_owned()]);
    }

    #[test]
    fn nan_speedups_are_parsed_and_rejected() {
        // Regression test: NaN compares false against every threshold, so
        // `new < base * 0.8` silently passed a corrupted record.  The token
        // must parse (not vanish as an unreadable line) and be rejected.
        let record = r#"{"name": "broken", "speedup": NaN, "homomorphisms": 1}"#;
        let parsed = parse_speedups(record);
        assert_eq!(parsed.len(), 1);
        assert!(parsed[0].1.is_nan());
        let invalid = invalid_speedups(&parsed);
        assert_eq!(invalid.len(), 1);
        assert_eq!(invalid[0].0, "broken");
        // And the NaN record never reaches the (vacuously true) compare.
        let baseline = vec![("broken".to_owned(), 10.0)];
        let (regressed, missing) = regressions(&baseline, &parsed);
        assert!(regressed.is_empty() && missing.is_empty());
    }

    #[test]
    fn infinite_speedups_are_rejected() {
        let record = r#"{"name": "inf_up", "speedup": inf}
{"name": "inf_down", "speedup": -inf}"#;
        let parsed = parse_speedups(record);
        assert_eq!(parsed.len(), 2);
        let invalid = invalid_speedups(&parsed);
        assert_eq!(
            invalid.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["inf_up", "inf_down"]
        );
    }

    #[test]
    fn zero_and_negative_speedups_are_rejected() {
        let records = vec![
            ("zero".to_owned(), 0.0),
            ("negative".to_owned(), -3.5),
            ("fine".to_owned(), 1.2),
        ];
        let invalid = invalid_speedups(&records);
        assert_eq!(
            invalid.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["zero", "negative"]
        );
    }

    #[test]
    fn well_formed_records_have_no_invalid_speedups() {
        assert!(invalid_speedups(&parse_speedups(RECORD)).is_empty());
        assert!(malformed_speedups(RECORD).is_empty());
    }

    #[test]
    fn unparseable_speedup_values_are_detected_not_skipped() {
        // A speedup that fails to parse must be surfaced as corruption, not
        // silently dropped from the record (a dropped baseline workload
        // would otherwise count as fresh-only and escape the gate).
        let record = r#"{"name": "garbled", "speedup": 2x4.8, "homomorphisms": 1}"#;
        assert!(parse_speedups(record).is_empty());
        assert_eq!(malformed_speedups(record), vec!["garbled".to_owned()]);
    }
}
