//! Benchmark regression gate for `BENCH_matcher.json`.
//!
//! Compares the speedups of a freshly produced benchmark record against the
//! committed baseline and fails (exit code 1) when any workload present in
//! both regressed by more than 20%.  Workloads only present in the fresh
//! record are allowed (new benchmarks); workloads that disappeared fail the
//! gate (a silently dropped benchmark is indistinguishable from a
//! regression).
//!
//! Usage (CI runs this after `cargo bench -p ntgd-bench --bench matcher`
//! rewrites `BENCH_matcher.json`; locally, copy the committed file aside
//! first):
//!
//! ```text
//! cp BENCH_matcher.json /tmp/bench_baseline.json
//! cargo bench -p ntgd-bench --bench matcher
//! cargo run -p ntgd-bench --bin bench_gate -- /tmp/bench_baseline.json BENCH_matcher.json
//! ```
//!
//! The parser is deliberately minimal: it reads the `"name"`/`"speedup"`
//! pairs of the one-workload-per-line format the matcher benchmark emits
//! (the workspace is offline, so no JSON crate is available).

use std::process::ExitCode;

/// Maximum tolerated relative loss of a recorded speedup (20%).
const TOLERATED_REGRESSION: f64 = 0.20;

/// Extracts `(name, speedup)` pairs from a benchmark record.
fn parse_speedups(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(speedup) = field_num(line, "speedup") else {
            continue;
        };
        out.push((name, speedup));
    }
    out
}

/// The string value of `"key": "..."` on a line, if present.
fn field_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let rest = &line[line.find(&marker)? + marker.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_owned())
}

/// The numeric value of `"key": <number>` on a line, if present.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let rest = line[line.find(&marker)? + marker.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The regressions (name, baseline, fresh) beyond the tolerated loss, plus
/// the workloads missing from the fresh record.
fn regressions(
    baseline: &[(String, f64)],
    fresh: &[(String, f64)],
) -> (Vec<(String, f64, f64)>, Vec<String>) {
    let mut regressed = Vec::new();
    let mut missing = Vec::new();
    for (name, base) in baseline {
        match fresh.iter().find(|(n, _)| n == name) {
            None => missing.push(name.clone()),
            Some((_, new)) => {
                if *new < base * (1.0 - TOLERATED_REGRESSION) {
                    regressed.push((name.clone(), *base, *new));
                }
            }
        }
    }
    (regressed, missing)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(error) => {
            eprintln!("bench_gate: cannot read {path}: {error}");
            None
        }
    };
    let (Some(baseline_text), Some(fresh_text)) = (read(baseline_path), read(fresh_path)) else {
        return ExitCode::from(2);
    };
    let baseline = parse_speedups(&baseline_text);
    let fresh = parse_speedups(&fresh_text);
    if baseline.is_empty() {
        eprintln!("bench_gate: no workloads found in baseline {baseline_path}");
        return ExitCode::from(2);
    }

    println!("workload             baseline   fresh");
    for (name, base) in &baseline {
        let new = fresh
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| format!("{s:.1}x"))
            .unwrap_or_else(|| "MISSING".to_owned());
        println!("{name:<20} {base:>7.1}x {new:>7}");
    }
    for (name, new) in &fresh {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("{name:<20} {:>8} {new:>6.1}x (new)", "-");
        }
    }

    let (regressed, missing) = regressions(&baseline, &fresh);
    let mut failed = false;
    for (name, base, new) in &regressed {
        eprintln!(
            "bench_gate: FAIL {name}: speedup {new:.1}x regressed more than \
             {:.0}% below the baseline {base:.1}x",
            TOLERATED_REGRESSION * 100.0
        );
        failed = true;
    }
    for name in &missing {
        eprintln!("bench_gate: FAIL {name}: workload missing from the fresh record");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "bench_gate: OK ({} workloads within {:.0}% of the baseline)",
            baseline.len(),
            TOLERATED_REGRESSION * 100.0
        );
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RECORD: &str = r#"{
  "benchmark": "matcher",
  "workloads": [
    {"name": "chain_join", "indexed_median_ns": 1, "reference_median_ns": 2, "speedup": 25.7, "homomorphisms": 4237},
    {"name": "slot_view", "indexed_median_ns": 1, "reference_median_ns": 2, "speedup": 3.2, "homomorphisms": 4329}
  ]
}"#;

    #[test]
    fn parses_names_and_speedups() {
        let parsed = parse_speedups(RECORD);
        assert_eq!(
            parsed,
            vec![
                ("chain_join".to_owned(), 25.7),
                ("slot_view".to_owned(), 3.2)
            ]
        );
    }

    #[test]
    fn tolerates_small_losses_and_new_workloads() {
        let baseline = vec![("a".to_owned(), 10.0)];
        let fresh = vec![("a".to_owned(), 8.5), ("b".to_owned(), 1.0)];
        let (regressed, missing) = regressions(&baseline, &fresh);
        assert!(regressed.is_empty());
        assert!(missing.is_empty());
    }

    #[test]
    fn flags_large_regressions_and_missing_workloads() {
        let baseline = vec![("a".to_owned(), 10.0), ("gone".to_owned(), 2.0)];
        let fresh = vec![("a".to_owned(), 7.9)];
        let (regressed, missing) = regressions(&baseline, &fresh);
        assert_eq!(regressed, vec![("a".to_owned(), 10.0, 7.9)]);
        assert_eq!(missing, vec!["gone".to_owned()]);
    }
}
