//! # ntgd-bench
//!
//! Workload generators and experiment drivers shared by the Criterion
//! benchmarks (`benches/e*.rs`) and the `experiments` binary that regenerates
//! every row of `EXPERIMENTS.md`.
//!
//! Each `eN_*` function is pure computation over the library crates; the
//! benchmarks measure their running time, the binary prints their results.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use ntgd_core::{atom, cst, Atom, Database, Interpretation, Program};
use ntgd_parser::{parse_database, parse_program, parse_query, parse_unit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The program of Example 1 (used throughout the E1/E8 experiments).
pub fn example1_program() -> Program {
    parse_program(
        "person(X) -> hasFather(X, Y).\
         hasFather(X, Y) -> sameAs(Y, Y).\
         hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).",
    )
    .expect("Example 1 parses")
}

/// The database of Example 1.
pub fn example1_database() -> Database {
    parse_database("person(alice).").expect("Example 1 database parses")
}

/// One row of the E1 semantic-comparison table.
#[derive(Clone, Debug)]
pub struct E1Row {
    /// The query text.
    pub query: String,
    /// Answer under the LP (Skolemization) approach.
    pub lp: String,
    /// Answer under the chase-based operational semantics of \[3\].
    pub operational: String,
    /// Answer under the paper's new SMS semantics.
    pub sms: String,
}

/// E1 — Examples 1–4: the three semantics on the person/hasFather program.
pub fn e1_semantics() -> Vec<E1Row> {
    let db = example1_database();
    let program = example1_program();
    let queries = [
        "?- person(X), not abnormal(X).",
        "?- person(X), abnormal(X).",
        "?- not hasFather(alice, bob).",
        "?- not abnormal(alice).",
    ];
    let lp = ntgd_lp::LpEngine::new(&db, &program, &ntgd_lp::LpLimits::default())
        .expect("Example 1 grounds");
    let operational_models = ntgd_chase::operational_stable_models(
        &db,
        &program,
        &ntgd_chase::OperationalConfig::default(),
    );
    let sms = ntgd_sms::SmsEngine::new(&program);
    let mut rows = Vec::new();
    for q_text in queries {
        let q = parse_query(q_text).expect("query parses");
        let lp_answer = match lp.entails_cautious(&q) {
            ntgd_lp::LpAnswer::Entailed => "entailed",
            ntgd_lp::LpAnswer::NotEntailed => "not entailed",
            ntgd_lp::LpAnswer::Inconsistent => "inconsistent",
        };
        let operational_answer = if operational_models.is_empty() {
            "inconsistent"
        } else if operational_models.iter().all(|m| {
            let mut m = m.clone();
            for lit in q.literals() {
                for t in lit.atom().terms().filter(|t| t.is_constant()) {
                    m.add_domain_element(*t);
                }
            }
            q.holds(&m)
        }) {
            "entailed"
        } else {
            "not entailed"
        };
        let sms_answer = match sms.entails_cautious(&db, &q).expect("SMS answers") {
            ntgd_sms::SmsAnswer::Entailed => "entailed",
            ntgd_sms::SmsAnswer::NotEntailed => "not entailed",
            ntgd_sms::SmsAnswer::Inconsistent => "inconsistent",
        };
        rows.push(E1Row {
            query: q_text.to_owned(),
            lp: lp_answer.to_owned(),
            operational: operational_answer.to_owned(),
            sms: sms_answer.to_owned(),
        });
    }
    rows
}

/// A random existential-free normal program over unary predicates, together
/// with a random database (used for E2).
pub fn random_normal_program(
    rng: &mut StdRng,
    rules: usize,
    constants: usize,
) -> (Database, Program) {
    let predicates = ["p", "q", "r", "s", "t"];
    let mut db_text = String::new();
    for c in 0..constants {
        let pred = predicates[rng.gen_range(0..2)];
        let _ = write!(db_text, "{pred}(c{c}). ");
    }
    let mut rules_text = String::new();
    for _ in 0..rules {
        let body_pred = predicates[rng.gen_range(0..predicates.len())];
        let neg_pred = predicates[rng.gen_range(0..predicates.len())];
        let head_pred = predicates[rng.gen_range(2..predicates.len())];
        if rng.gen_bool(0.5) {
            let _ = write!(
                rules_text,
                "{body_pred}(X), not {neg_pred}(X) -> {head_pred}(X). "
            );
        } else {
            let _ = write!(rules_text, "{body_pred}(X) -> {head_pred}(X). ");
        }
    }
    (
        parse_database(&db_text).expect("random database parses"),
        parse_program(&rules_text).expect("random program parses"),
    )
}

/// E2 — Theorem 1: number of random programs on which the LP and SMS stable
/// model sets coincide (should equal `samples`).
pub fn e2_theorem1(samples: usize, seed: u64) -> (usize, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agreements = 0;
    for _ in 0..samples {
        let (db, program) = random_normal_program(&mut rng, 4, 3);
        let lp = ntgd_lp::LpEngine::new(&db, &program, &ntgd_lp::LpLimits::default())
            .expect("random program grounds");
        let mut lp_models: Vec<Vec<Atom>> = lp
            .models()
            .iter()
            .map(Interpretation::sorted_atoms)
            .collect();
        lp_models.sort();
        let sms = ntgd_sms::SmsEngine::new(&program).with_null_budget(ntgd_sms::NullBudget::None);
        let mut sms_models: Vec<Vec<Atom>> = sms
            .stable_models(&db)
            .expect("SMS enumerates")
            .iter()
            .map(Interpretation::sorted_atoms)
            .collect();
        sms_models.sort();
        if lp_models == sms_models {
            agreements += 1;
        }
    }
    (samples, agreements)
}

/// One row of the E3 class-checker table.
#[derive(Clone, Debug)]
pub struct E3Row {
    /// Name of the rule set.
    pub name: String,
    /// Weak acyclicity.
    pub weakly_acyclic: bool,
    /// Stickiness.
    pub sticky: bool,
    /// Guardedness.
    pub guarded: bool,
}

/// E3 — Definition 3 / Figure 1: classify the paper's rule sets.
pub fn e3_classes() -> Vec<E3Row> {
    let cases = [
        ("example1", "person(X) -> hasFather(X, Y). hasFather(X, Y) -> sameAs(Y, Y). hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X)."),
        ("figure1a-sticky", "t(X, Y, Z) -> s(Y, W). r(X, Y), p(Y, Z) -> t(X, Y, W)."),
        ("figure1a-nonsticky", "t(X, Y, Z) -> s(X, W). r(X, Y), p(Y, Z) -> t(X, Y, W)."),
        ("infinite-chain", "person(X) -> parent(X, Y), person(Y)."),
        ("transitive-closure", "e(X, Y), e(Y, Z) -> e(X, Z)."),
        ("cartesian-product", "p(X), s(Y) -> t(X, Y)."),
    ];
    cases
        .iter()
        .map(|(name, text)| {
            let program = parse_program(text).expect("case parses");
            E3Row {
                name: (*name).to_owned(),
                weakly_acyclic: ntgd_classes::is_weakly_acyclic(&program),
                sticky: ntgd_classes::is_sticky(&program),
                guarded: ntgd_classes::is_guarded(&program),
            }
        })
        .collect()
}

/// A random weakly-acyclic rule set over binary predicates used for the
/// class-checker scaling benchmark.
pub fn random_weakly_acyclic_program(rng: &mut StdRng, rules: usize) -> Program {
    let mut text = String::new();
    for i in 0..rules {
        let _ = write!(text, "p{i}(X, Y) -> p{}(Y, Z). ", i + 1);
        if rng.gen_bool(0.5) {
            let _ = write!(text, "p{i}(X, Y), not q{i}(X) -> q{}(X). ", i + 1);
        }
    }
    parse_program(&text).expect("random WA program parses")
}

/// The weakly-acyclic "modest people" program used by E4.
pub fn e4_program() -> Program {
    parse_program(
        "person(X) -> friend(X, Y).\
         friend(X, Y), not rich(X) -> modest(X).\
         modest(X), rich(X) -> contradiction.",
    )
    .expect("E4 program parses")
}

/// A database with `n` persons (every third one rich) for E4/E8.
pub fn e4_database(n: usize) -> Database {
    let mut facts = Vec::new();
    for i in 0..n {
        facts.push(atom("person", vec![cst(&format!("p{i}"))]));
        if i % 3 == 0 {
            facts.push(atom("rich", vec![cst(&format!("p{i}"))]));
        }
    }
    Database::from_facts(facts).expect("E4 facts are ground")
}

/// E4 — Theorem 6 shape: SMS query answering time is dominated by the
/// guess-and-check machinery; the positive-TGD chase baseline stays
/// polynomial.  Returns (database size, SMS answer, chase instance size).
pub fn e4_data_complexity(n: usize) -> (usize, bool, usize) {
    let db = e4_database(n);
    let program = e4_program();
    let q = parse_query("?- modest(X).").expect("query parses");
    let sms = ntgd_sms::SmsEngine::new(&program);
    let answer = matches!(
        sms.entails_cautious(&db, &q).expect("SMS answers"),
        ntgd_sms::SmsAnswer::Entailed
    );
    let chase = ntgd_chase::restricted_chase(&db, &program, &ntgd_chase::ChaseConfig::default());
    (db.len(), answer, chase.instance.len())
}

/// E5 — 2-QBF via the Section 5.3 encoding.  Returns, per instance, whether
/// the SMS answer agreed with brute force.
pub fn e5_qbf(instances: usize, seed: u64) -> (usize, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agreements = 0;
    for _ in 0..instances {
        let formula = ntgd_encodings::TwoQbf::random(&mut rng, 1, 1, 2);
        let via_sms = formula.solve_via_sms().expect("QBF encoding solves");
        if via_sms == formula.brute_force_satisfiable() {
            agreements += 1;
        }
    }
    (instances, agreements)
}

/// E6 — Lemma 13: answer a colouring query directly on the disjunctive
/// program and through the disjunction-free translation; returns the two
/// (equal) brave answers.
pub fn e6_disjunction() -> (bool, bool) {
    let unit = parse_unit(
        "node(X) -> red(X) | green(X).\
         edge(X, Y), red(X), red(Y) -> clash.\
         edge(X, Y), green(X), green(Y) -> clash.",
    )
    .expect("disjunctive program parses");
    let prog = unit.disjunctive_program().expect("consistent schema");
    let db = parse_database("node(a). node(b). edge(a,b).").expect("database parses");
    let q = parse_query("?- not clash.").expect("query parses");
    let direct = ntgd_sms::SmsEngine::new_disjunctive(prog.clone())
        .entails_brave(&db, &q)
        .expect("direct answering");
    let translated = ntgd_disjunction::eliminate_disjunction(&prog).expect("translation");
    let translated_answer = ntgd_sms::SmsEngine::new(&translated.program)
        .entails_brave(&translated.extend_database(&db), &q)
        .expect("translated answering");
    (direct, translated_answer)
}

/// E7 — Theorem 15: the disjunctive-Datalog translation is weakly acyclic and
/// preserves the brave answer on a small graph.
pub fn e7_datalog() -> (bool, bool, bool) {
    let program = parse_unit(
        "node(X) -> red(X) | green(X).\
         edge(X, Y), red(X), red(Y) -> clash.\
         edge(X, Y), green(X), green(Y) -> clash.\
         clash -> q.",
    )
    .expect("datalog program parses")
    .disjunctive_program()
    .expect("consistent schema");
    let dq = ntgd_disjunction::DatalogQuery::new(program, ntgd_core::Symbol::intern("q"))
        .expect("valid datalog query");
    let translated = ntgd_disjunction::datalog_to_watgd(&dq).expect("translation");
    let weakly_acyclic = ntgd_classes::is_weakly_acyclic(&translated.program);
    let db = parse_database("node(a). node(b). edge(a,b).").expect("database parses");
    let direct = ntgd_sms::SmsEngine::new_disjunctive(dq.program.clone())
        .entails_brave(&db, &parse_query("?- q.").expect("query"))
        .expect("direct answering");
    let translated_answer = ntgd_sms::SmsEngine::new(&translated.program)
        .entails_brave(&db, &parse_query("?- q_prime.").expect("query"))
        .expect("translated answering");
    (weakly_acyclic, direct, translated_answer)
}

/// E8 — Lemma 7 / Proposition 9: maximum stable model size vs. the chase
/// bound, for a growing database.  Returns (max |M⁺|, chase bound).
pub fn e8_bounds(n: usize) -> (usize, usize) {
    let db = e4_database(n);
    let program = e4_program();
    let engine = ntgd_sms::SmsEngine::new(&program);
    let models = engine.stable_models(&db).expect("models enumerate");
    let max_size = models.iter().map(Interpretation::len).max().unwrap_or(0);
    let chase = ntgd_chase::restricted_chase(&db, &program, &ntgd_chase::ChaseConfig::default());
    for m in &models {
        assert!(ntgd_sms::is_supported_by_operator(&db, &program, m));
    }
    (max_size, chase.instance.len())
}

/// E9 — applications: consistent query answering and robust colourability.
/// Returns (CQA declarative == brute force, robust colouring declarative ==
/// brute force).
pub fn e9_applications() -> (bool, bool) {
    let cqa = ntgd_encodings::CqaInstance::new(
        vec![
            atom("salary", vec![cst("alice"), cst("50")]),
            atom("salary", vec![cst("bob"), cst("60")]),
            atom("salary", vec![cst("bob"), cst("70")]),
        ],
        vec![(1, 2)],
    );
    let cqa_agrees = cqa.repairs_via_sms().expect("CQA repairs") == cqa.repairs_brute_force();
    let robust = ntgd_encodings::RobustColoringInstance {
        vertices: 3,
        certain_edges: vec![(0, 1), (1, 2)],
        uncertain_edges: vec![(2, 0)],
        colours: 2,
    };
    let robust_agrees = robust
        .robustly_colourable_via_sms()
        .expect("robust colouring")
        == robust.robustly_colourable_brute_force();
    (cqa_agrees, robust_agrees)
}

/// E10 — stability-check cost: build the Example-1 style model over `n`
/// persons and check its stability.  Returns the model size.
pub fn e10_stability(n: usize) -> usize {
    let db = e4_database(n);
    let program = e4_program();
    // Build the "canonical" stable model by hand: friend witnessed by a null,
    // every non-rich person modest.
    let mut atoms: BTreeSet<Atom> = db.facts().cloned().collect();
    for i in 0..n {
        let p = cst(&format!("p{i}"));
        atoms.insert(atom("friend", vec![p, ntgd_core::Term::Null(i as u64)]));
        if i % 3 != 0 {
            atoms.insert(atom("modest", vec![p]));
        }
    }
    let interpretation = Interpretation::from_atoms(atoms);
    assert!(ntgd_sms::is_stable_model(&db, &program, &interpretation));
    interpretation.len()
}

/// One row of the E11 EFWFS-replay table.
#[derive(Clone, Debug)]
pub struct E11Row {
    /// The query text.
    pub query: String,
    /// Cautious answer under the (bounded) equality-friendly WFS of \[21\].
    pub efwfs: String,
    /// Cautious answer under the paper's new SMS semantics.
    pub sms: String,
}

/// E11 — Examples 2 and 3: the equality-friendly well-founded semantics
/// versus the paper's new semantics on the person/hasFather program.
pub fn e11_efwfs() -> Vec<E11Row> {
    let db = example1_database();
    let program = example1_program();
    let sms = ntgd_sms::SmsEngine::new(&program);
    let config = ntgd_lp::EfwfsConfig::default();
    let queries = [
        "?- not hasFather(alice, bob).",
        "?- not abnormal(alice).",
        "?- hasFather(alice, Y), sameAs(Y, Y).",
    ];
    queries
        .iter()
        .map(|q_text| {
            let q = parse_query(q_text).expect("query parses");
            let efwfs = ntgd_lp::efwfs_entails_cautious(&db, &program, &q, &config);
            let sms_answer = match sms.entails_cautious(&db, &q).expect("SMS answers") {
                ntgd_sms::SmsAnswer::Entailed => "entailed",
                ntgd_sms::SmsAnswer::NotEntailed => "not entailed",
                ntgd_sms::SmsAnswer::Inconsistent => "inconsistent",
            };
            E11Row {
                query: (*q_text).to_owned(),
                efwfs: if efwfs.entailed {
                    "entailed".to_owned()
                } else {
                    "not entailed".to_owned()
                },
                sms: sms_answer.to_owned(),
            }
        })
        .collect()
}

/// One row of the E12 acyclicity/fragment landscape table.
#[derive(Clone, Debug)]
pub struct E12Row {
    /// Name of the rule set.
    pub name: String,
    /// The full class report.
    pub report: ntgd_classes::ClassReport,
}

/// E12 — the decidability landscape around the paper's three paradigms:
/// classify the paper's rule sets against every implemented class and check
/// the known containments.
pub fn e12_landscape() -> Vec<E12Row> {
    let cases = [
        ("example1", "person(X) -> hasFather(X, Y). hasFather(X, Y) -> sameAs(Y, Y). hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X)."),
        ("figure1a-sticky", "t(X, Y, Z) -> s(Y, W). r(X, Y), p(Y, Z) -> t(X, Y, W)."),
        ("figure1a-nonsticky", "t(X, Y, Z) -> s(X, W). r(X, Y), p(Y, Z) -> t(X, Y, W)."),
        ("infinite-chain", "person(X) -> parent(X, Y), person(Y)."),
        ("transitive-closure", "e(X, Y), e(Y, Z) -> e(X, Z)."),
        ("cartesian-product", "p(X), s(Y) -> t(X, Y)."),
        ("ja-not-wa", "p(X) -> q(X, Y). q(X, Y), s(X) -> q(Z, X)."),
        ("terminating-not-wa", "p(X) -> q(X, Y). q(X, Y), q(Y, X) -> p(Y)."),
    ];
    cases
        .iter()
        .map(|(name, text)| {
            let program = parse_program(text).expect("case parses");
            let report = ntgd_classes::classify(&program);
            assert_eq!(
                report.violated_containment(),
                None,
                "containment violated for {name}"
            );
            E12Row {
                name: (*name).to_owned(),
                report,
            }
        })
        .collect()
}

/// E13 — the stable tree model property in action: treewidth of every stable
/// model of the E4 program (weakly acyclic ⇒ small constant treewidth) versus
/// the treewidth of an `n × n` grid interpretation (the gadget shape behind
/// Theorems 4/5, growing with `n`).  Returns
/// `(max stable-model treewidth, grid treewidth)`.
pub fn e13_treewidth(persons: usize, grid: usize) -> (usize, usize) {
    let db = e4_database(persons);
    let program = e4_program();
    let engine = ntgd_sms::SmsEngine::new(&program);
    let models = engine.stable_models(&db).expect("models enumerate");
    let max_model_width = models
        .iter()
        .map(|m| ntgd_treewidth::interpretation_treewidth(m, 18).0)
        .max()
        .unwrap_or(0);

    let mut grid_atoms = Vec::new();
    for r in 0..grid {
        for c in 0..grid {
            let name = |r: usize, c: usize| cst(&format!("g{r}_{c}"));
            if c + 1 < grid {
                grid_atoms.push(atom("edge", vec![name(r, c), name(r, c + 1)]));
            }
            if r + 1 < grid {
                grid_atoms.push(atom("edge", vec![name(r, c), name(r + 1, c)]));
            }
        }
    }
    let grid_interpretation = Interpretation::from_atoms(grid_atoms);
    let grid_width = ntgd_treewidth::interpretation_treewidth(&grid_interpretation, 16).0;
    (max_model_width, grid_width)
}

/// E14 — chase variants and cores: run the restricted, Skolem and oblivious
/// chases of the Example-1 program on a database with `n` persons and return
/// `(restricted, skolem, oblivious, core)` instance sizes.  All three chases
/// are homomorphically equivalent, so the core size is common to them.
pub fn e14_chase_variants(n: usize) -> (usize, usize, usize, usize) {
    let mut facts = Vec::new();
    for i in 0..n {
        facts.push(atom("person", vec![cst(&format!("p{i}"))]));
    }
    // One explicit father makes the Skolem/oblivious chases strictly larger
    // than the restricted chase.
    facts.push(atom("hasFather", vec![cst("p0"), cst("dad")]));
    let db = Database::from_facts(facts).expect("ground facts");
    let program = example1_program();
    let config = ntgd_chase::ChaseConfig::default();
    let restricted = ntgd_chase::restricted_chase(&db, &program, &config).instance;
    let skolem = ntgd_chase::skolem_chase(&db, &program, &config).instance;
    let oblivious = ntgd_chase::oblivious_chase(&db, &program, &config).instance;
    let core = ntgd_chase::core_of(&skolem);
    (restricted.len(), skolem.len(), oblivious.len(), core.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_rows_reproduce_the_papers_separation() {
        let rows = e1_semantics();
        assert_eq!(rows.len(), 4);
        // ¬hasFather(alice, bob): entailed by LP and the operational
        // semantics, NOT entailed by the new SMS semantics.
        let bob = rows.iter().find(|r| r.query.contains("bob")).unwrap();
        assert_eq!(bob.lp, "entailed");
        assert_eq!(bob.operational, "entailed");
        assert_eq!(bob.sms, "not entailed");
        // ¬abnormal(alice): entailed by all three.
        let abnormal = rows
            .iter()
            .find(|r| r.query.contains("not abnormal(alice)"))
            .unwrap();
        assert_eq!(abnormal.sms, "entailed");
    }

    #[test]
    fn e2_random_programs_always_agree() {
        let (samples, agreements) = e2_theorem1(5, 42);
        assert_eq!(samples, agreements);
    }

    #[test]
    fn e3_classifies_figure1() {
        let rows = e3_classes();
        let sticky = rows.iter().find(|r| r.name == "figure1a-sticky").unwrap();
        assert!(sticky.sticky);
        let nonsticky = rows
            .iter()
            .find(|r| r.name == "figure1a-nonsticky")
            .unwrap();
        assert!(!nonsticky.sticky);
        let chain = rows.iter().find(|r| r.name == "infinite-chain").unwrap();
        assert!(!chain.weakly_acyclic);
        assert!(chain.guarded);
    }

    #[test]
    fn e4_and_e8_small_sizes() {
        let (db_size, answer, chase_size) = e4_data_complexity(3);
        assert_eq!(db_size, 4);
        assert!(answer);
        assert!(chase_size >= db_size);
        let (max_model, bound) = e8_bounds(2);
        assert!(max_model <= bound + 2);
    }

    #[test]
    #[ignore = "expensive: full counter-model exhaustion; exercised by the experiments binary instead"]
    fn e6_and_e7_translations_agree() {
        let (direct, translated) = e6_disjunction();
        assert_eq!(direct, translated);
        let (wa, direct, translated) = e7_datalog();
        assert!(wa);
        assert_eq!(direct, translated);
    }

    #[test]
    fn e9_applications_agree() {
        let (cqa, robust) = e9_applications();
        assert!(cqa);
        assert!(robust);
    }

    #[test]
    fn e10_stability_scales_linearly_in_model_size() {
        assert!(e10_stability(3) >= 6);
    }

    #[test]
    fn e11_efwfs_shows_the_example3_shortcoming() {
        let rows = e11_efwfs();
        let bob = rows.iter().find(|r| r.query.contains("bob")).unwrap();
        // Example 2: both the EFWFS and the new semantics give the intended
        // answer (not entailed).
        assert_eq!(bob.efwfs, "not entailed");
        assert_eq!(bob.sms, "not entailed");
        // Example 3: the EFWFS fails to entail that alice is normal, the new
        // semantics entails it.
        let abnormal = rows
            .iter()
            .find(|r| r.query.contains("not abnormal"))
            .unwrap();
        assert_eq!(abnormal.efwfs, "not entailed");
        assert_eq!(abnormal.sms, "entailed");
    }

    #[test]
    fn e12_landscape_matches_the_basic_checkers() {
        let rows = e12_landscape();
        let example1 = rows.iter().find(|r| r.name == "example1").unwrap();
        assert!(example1.report.weakly_acyclic);
        assert!(!example1.report.guarded);
        let ja = rows.iter().find(|r| r.name == "ja-not-wa").unwrap();
        assert!(!ja.report.weakly_acyclic);
        assert!(ja.report.jointly_acyclic);
        let mfa = rows
            .iter()
            .find(|r| r.name == "terminating-not-wa")
            .unwrap();
        assert!(!mfa.report.weakly_acyclic);
        assert!(mfa.report.model_faithful_acyclic);
    }

    #[test]
    fn e13_stable_models_have_small_treewidth_while_grids_grow() {
        let (model_width, grid_width) = e13_treewidth(3, 3);
        assert!(model_width <= 2);
        assert_eq!(grid_width, 3);
    }

    #[test]
    fn e14_chase_variant_sizes_are_ordered_and_share_a_core() {
        let (restricted, skolem, oblivious, core) = e14_chase_variants(3);
        assert!(restricted <= skolem);
        assert!(skolem <= oblivious);
        assert!(core <= skolem);
        assert!(core <= restricted);
    }
}
