//! A compact CDCL solver: watched literals, 1-UIP learning, VSIDS-style
//! activities, geometric restarts, incremental solving under assumptions.

use crate::types::{Lit, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Clone, PartialEq, Debug)]
pub enum SolveResult {
    /// Satisfiable; the model assigns every variable.
    Sat(Vec<bool>),
    /// Unsatisfiable (under the given assumptions).
    Unsat,
}

impl SolveResult {
    /// Returns `true` if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// Returns the model, if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat => None,
        }
    }
}

const UNASSIGNED: u8 = 2;

#[derive(Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
}

type ClauseRef = usize;

/// A CDCL SAT solver.
pub struct Solver {
    clauses: Vec<Clause>,
    /// watches[lit.index()] = clause refs currently watching `lit`.
    watches: Vec<Vec<ClauseRef>>,
    /// assignment per variable: 0 = false, 1 = true, 2 = unassigned.
    assign: Vec<u8>,
    /// decision level at which each variable was assigned.
    level: Vec<u32>,
    /// reason clause for each implied variable.
    reason: Vec<Option<ClauseRef>>,
    /// assignment trail.
    trail: Vec<Lit>,
    /// index into `trail` where each decision level starts.
    trail_lim: Vec<usize>,
    /// next trail position to propagate.
    qhead: usize,
    /// VSIDS-ish activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// saved phase per variable.
    phase: Vec<bool>,
    /// set once the clause database is unsatisfiable at level 0.
    unsat: bool,
    /// statistics: number of conflicts seen.
    conflicts: u64,
    /// statistics: number of decisions taken.
    decisions: u64,
    /// statistics: number of propagations performed.
    propagations: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            phase: Vec::new(),
            unsat: false,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of problem (non-learnt) clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.learnt).count()
    }

    /// Number of conflicts encountered so far.
    pub fn num_conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of decisions taken so far.
    pub fn num_decisions(&self) -> u64 {
        self.decisions
    }

    /// Number of unit propagations performed so far.
    pub fn num_propagations(&self) -> u64 {
        self.propagations
    }

    fn value(&self, lit: Lit) -> u8 {
        let v = self.assign[lit.var().index()];
        if v == UNASSIGNED {
            UNASSIGNED
        } else if lit.is_positive() {
            v
        } else {
            1 - v
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause.  Returns `false` if the clause database became trivially
    /// unsatisfiable (empty clause, or conflicting units at level 0).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if self.unsat {
            return false;
        }
        // Clauses may be added between solve() calls; discard any leftover
        // search state first.
        self.backtrack_to(0);
        // Normalize: sort, dedupe, drop tautologies and false literals.
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort();
        lits.dedup();
        let mut normalized = Vec::with_capacity(lits.len());
        for &l in &lits {
            if lits.contains(&!l) {
                return true; // tautology, trivially satisfied
            }
            match self.value(l) {
                1 => return true, // already satisfied at level 0
                0 => continue,    // already false at level 0, drop literal
                _ => normalized.push(l),
            }
        }
        match normalized.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(normalized[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(normalized, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        let cref = self.clauses.len();
        self.watches[lits[0].index()].push(cref);
        self.watches[lits[1].index()].push(cref);
        self.clauses.push(Clause { lits, learnt });
        cref
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value(lit), UNASSIGNED);
        let v = lit.var().index();
        self.assign[v] = if lit.is_positive() { 1 } else { 0 };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.phase[v] = lit.is_positive();
        self.trail.push(lit);
    }

    /// Unit propagation.  Returns a conflicting clause reference, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let false_lit = !lit;
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            while i < watch_list.len() {
                let cref = watch_list[i];
                // Make sure the false literal is at position 1.
                let (w0, w1) = {
                    let c = &mut self.clauses[cref];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    (c.lits[0], c.lits[1])
                };
                debug_assert_eq!(w1, false_lit);
                // If the other watch is true, the clause is satisfied.
                if self.value(w0) == 1 {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = None;
                {
                    let c = &self.clauses[cref];
                    for (k, &l) in c.lits.iter().enumerate().skip(2) {
                        if self.value(l) != 0 {
                            found = Some((k, l));
                            break;
                        }
                    }
                }
                if let Some((k, l)) = found {
                    self.clauses[cref].lits.swap(1, k);
                    self.watches[l.index()].push(cref);
                    watch_list.swap_remove(i);
                    continue;
                }
                // No new watch: clause is unit or conflicting.
                if self.value(w0) == 0 {
                    // Conflict: restore the remaining watches and return.
                    self.watches[false_lit.index()].append(&mut watch_list);
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                self.enqueue(w0, Some(cref));
                i += 1;
            }
            self.watches[false_lit.index()].extend(watch_list);
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// 1-UIP conflict analysis.  Returns the learnt clause (asserting literal
    /// first) and the backtrack level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut lit: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut clause = conflict;
        let current_level = self.decision_level();

        loop {
            let clause_lits = self.clauses[clause].lits.clone();
            for q in clause_lits {
                if Some(q) == lit {
                    continue;
                }
                let v = q.var();
                if seen[v.index()] || self.level[v.index()] == 0 {
                    continue;
                }
                seen[v.index()] = true;
                self.bump_var(v);
                if self.level[v.index()] == current_level {
                    counter += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Find the next literal of the current level on the trail.
            loop {
                index -= 1;
                let l = self.trail[index];
                if seen[l.var().index()] {
                    lit = Some(l);
                    break;
                }
            }
            let l = lit.expect("found a literal of the current level");
            seen[l.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt.insert(0, !l);
                break;
            }
            clause = self.reason[l.var().index()].expect("non-decision literal has a reason");
        }

        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            // Second highest level in the learnt clause; move that literal to
            // position 1 so the watches are correct after backjumping.
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, backtrack_level)
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.decision_level() > level {
            let start = self.trail_lim.pop().expect("non-zero decision level");
            while self.trail.len() > start {
                let l = self.trail.pop().expect("trail not empty");
                let v = l.var().index();
                self.assign[v] = UNASSIGNED;
                self.reason[v] = None;
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&self) -> Option<Var> {
        let mut best: Option<Var> = None;
        let mut best_act = -1.0;
        for i in 0..self.num_vars() {
            if self.assign[i] == UNASSIGNED && self.activity[i] > best_act {
                best_act = self.activity[i];
                best = Some(Var(i as u32));
            }
        }
        best
    }

    /// Solves the current clause database under the given assumptions.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.unsat {
            return SolveResult::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveResult::Unsat;
        }

        let mut conflicts_until_restart = 100u64;
        let mut conflict_count_at_restart = self.conflicts;

        loop {
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SolveResult::Unsat;
                }
                // If the conflict is below or at the assumption levels we must
                // check whether it depends only on assumptions.
                let (learnt, backtrack_level) = self.analyze(conflict);
                if (backtrack_level as usize) < assumptions.len().min(self.trail_lim.len()) {
                    // The learnt clause asserts a literal below an assumption
                    // decision; backtrack there, then re-establish assumptions
                    // in the outer loop below by restarting the search.
                    self.backtrack_to(backtrack_level);
                } else {
                    self.backtrack_to(backtrack_level);
                }
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    if self.value(asserting) == 0 {
                        self.unsat = true;
                        return SolveResult::Unsat;
                    }
                    if self.value(asserting) == UNASSIGNED {
                        self.enqueue(asserting, None);
                    }
                } else {
                    let cref = self.attach_clause(learnt, true);
                    self.enqueue(asserting, Some(cref));
                }
                self.var_inc *= 1.05;
                // Restart policy: geometric.
                if self.conflicts - conflict_count_at_restart >= conflicts_until_restart {
                    conflicts_until_restart = (conflicts_until_restart as f64 * 1.5) as u64;
                    conflict_count_at_restart = self.conflicts;
                    self.backtrack_to(0);
                }
                continue;
            }

            // Re-establish assumptions as the first decisions.
            if (self.decision_level() as usize) < assumptions.len() {
                let next = assumptions[self.decision_level() as usize];
                match self.value(next) {
                    1 => {
                        // Already true: open an (empty) decision level so the
                        // indexing over assumptions stays aligned.
                        self.trail_lim.push(self.trail.len());
                    }
                    0 => return SolveResult::Unsat,
                    _ => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(next, None);
                    }
                }
                continue;
            }

            match self.pick_branch_var() {
                None => {
                    let model: Vec<bool> = self.assign.iter().map(|&a| a == 1).collect();
                    return SolveResult::Sat(model);
                }
                Some(v) => {
                    self.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    let lit = Lit::new(v, self.phase[v.index()]);
                    self.enqueue(lit, None);
                }
            }
        }
    }

    /// Convenience: solve without assumptions.
    pub fn solve_unconstrained(&mut self) -> SolveResult {
        self.solve(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause(&[v[0].positive()]));
        assert!(s.solve(&[]).is_sat());
        assert!(!s.add_clause(&[v[0].negative()]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = vars(&mut s, 1);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        let clauses: Vec<Vec<Lit>> = vec![
            vec![v[0].positive(), v[1].positive()],
            vec![v[0].negative(), v[2].positive()],
            vec![v[1].negative(), v[3].positive()],
            vec![v[2].negative(), v[3].negative()],
        ];
        for c in &clauses {
            assert!(s.add_clause(c));
        }
        let result = s.solve(&[]);
        let model = result.model().expect("satisfiable").to_vec();
        for c in &clauses {
            assert!(c.iter().any(|l| model[l.var().index()] == l.is_positive()));
        }
    }

    #[test]
    fn chains_of_implications_propagate() {
        // x0 -> x1 -> ... -> x9, x0 forced true, x9 forced false => UNSAT.
        let mut s = Solver::new();
        let v = vars(&mut s, 10);
        for i in 0..9 {
            assert!(s.add_clause(&[v[i].negative(), v[i + 1].positive()]));
        }
        assert!(s.add_clause(&[v[0].positive()]));
        assert!(s.solve(&[]).is_sat());
        assert!(!s.add_clause(&[v[9].negative()]) || s.solve(&[]) == SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: p[i][j] = pigeon i in hole j.
        let mut s = Solver::new();
        let mut p = vec![vec![]; 3];
        for row in p.iter_mut() {
            *row = vars(&mut s, 2);
        }
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        for (first, row1) in p.iter().enumerate() {
            for row2 in &p[first + 1..] {
                for (a, b) in row1.iter().zip(row2) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_restrict_and_are_reusable() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0].negative(), v[1].positive()]);
        s.add_clause(&[v[1].negative(), v[2].positive()]);
        // Assume x0: then x1 and x2 are implied.
        match s.solve(&[v[0].positive()]) {
            SolveResult::Sat(m) => {
                assert!(m[0] && m[1] && m[2]);
            }
            SolveResult::Unsat => panic!("should be satisfiable"),
        }
        // Incompatible assumptions.
        s.add_clause(&[v[2].negative(), v[0].negative()]);
        assert_eq!(
            s.solve(&[v[0].positive(), v[2].positive()]),
            SolveResult::Unsat
        );
        // The solver is reusable afterwards without assumptions.
        assert!(s.solve(&[]).is_sat());
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_handled() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        assert!(s.add_clause(&[v[0].positive(), v[0].positive()]));
        assert!(s.add_clause(&[v[1].positive(), v[1].negative()]));
        assert!(s.solve(&[]).is_sat());
    }

    #[test]
    fn statistics_are_tracked() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0].positive(), v[1].positive(), v[2].positive()]);
        let _ = s.solve(&[]);
        assert!(s.num_vars() == 3);
        assert!(s.num_clauses() == 1);
        // At least one decision must have happened.
        assert!(s.num_decisions() >= 1);
    }

    /// Brute-force satisfiability check used as an oracle in the next test.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
        for mask in 0..(1u32 << num_vars) {
            let assignment: Vec<bool> = (0..num_vars).map(|i| mask & (1 << i) != 0).collect();
            if clauses
                .iter()
                .all(|c| c.iter().any(|&(v, pos)| assignment[v] == pos))
            {
                return true;
            }
        }
        false
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        // Deterministic pseudo-random instance generation (xorshift) so the
        // test is reproducible without extra dependencies.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..300 {
            let num_vars = 3 + (next() % 6) as usize; // 3..8
            let num_clauses = 2 + (next() % 18) as usize; // 2..19
            let mut clauses = Vec::new();
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let mut c = Vec::new();
                for _ in 0..len {
                    let v = (next() % num_vars as u64) as usize;
                    let pos = next() % 2 == 0;
                    c.push((v, pos));
                }
                clauses.push(c);
            }
            let expected = brute_force_sat(num_vars, &clauses);
            let mut s = Solver::new();
            let v = vars(&mut s, num_vars);
            let mut trivially_unsat = false;
            for c in &clauses {
                let lits: Vec<Lit> = c.iter().map(|&(i, pos)| Lit::new(v[i], pos)).collect();
                if !s.add_clause(&lits) {
                    trivially_unsat = true;
                }
            }
            let got = if trivially_unsat {
                false
            } else {
                s.solve(&[]).is_sat()
            };
            assert_eq!(got, expected, "solver disagrees with brute force");
            // When SAT, verify the returned model.
            if got {
                if let SolveResult::Sat(m) = s.solve(&[]) {
                    for c in &clauses {
                        assert!(c.iter().any(|&(i, pos)| m[v[i].index()] == pos));
                    }
                }
            }
        }
    }
}
