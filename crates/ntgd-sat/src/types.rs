//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a dense index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from its index.
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `2 * var + (1 - polarity)` so that a literal and its negation
/// differ only in the lowest bit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// Creates a literal from a variable and a polarity (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 * 2 + if positive { 0 } else { 1 })
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 / 2)
    }

    /// Returns `true` if the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// Dense index of the literal (used for watch lists).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "-{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var::from_index(5);
        let p = v.positive();
        let n = v.negative();
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_ne!(p.index(), n.index());
    }

    #[test]
    fn display_formats() {
        let v = Var::from_index(3);
        assert_eq!(v.positive().to_string(), "x3");
        assert_eq!(v.negative().to_string(), "-x3");
    }
}
