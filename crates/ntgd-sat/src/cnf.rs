//! A small CNF construction layer on top of [`Solver`].
//!
//! The grounded stable-model formulas of `ntgd-sms` have the shape
//! `body⁺ ∧ ¬body⁻ → ⋁ᵢ (conjunction of head atoms)`.  [`CnfBuilder`] offers
//! Tseitin-style helpers to encode exactly that shape (plus the usual clause,
//! implication and cardinality helpers) without every caller re-implementing
//! auxiliary-variable bookkeeping.

use crate::solver::{SolveResult, Solver};
use crate::types::{Lit, Var};

/// A thin wrapper around [`Solver`] with encoding helpers.
#[derive(Default)]
pub struct CnfBuilder {
    solver: Solver,
}

impl CnfBuilder {
    /// Creates an empty builder.
    pub fn new() -> CnfBuilder {
        CnfBuilder {
            solver: Solver::new(),
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        self.solver.new_var()
    }

    /// Creates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Adds a clause (a disjunction of literals).
    pub fn clause(&mut self, lits: &[Lit]) {
        self.solver.add_clause(lits);
    }

    /// Adds a unit clause forcing the literal.
    pub fn force(&mut self, lit: Lit) {
        self.clause(&[lit]);
    }

    /// Adds `a → b`.
    pub fn implies(&mut self, a: Lit, b: Lit) {
        self.clause(&[!a, b]);
    }

    /// Adds `⋀ antecedents → consequent`.
    pub fn implies_all(&mut self, antecedents: &[Lit], consequent: Lit) {
        let mut c: Vec<Lit> = antecedents.iter().map(|&l| !l).collect();
        c.push(consequent);
        self.clause(&c);
    }

    /// Adds `⋀ antecedents → ⋁ consequents`.
    pub fn implies_any(&mut self, antecedents: &[Lit], consequents: &[Lit]) {
        let mut c: Vec<Lit> = antecedents.iter().map(|&l| !l).collect();
        c.extend_from_slice(consequents);
        self.clause(&c);
    }

    /// Returns a literal equivalent to the conjunction of `lits`
    /// (Tseitin encoding; a fresh variable is introduced).
    ///
    /// The empty conjunction yields a literal that is always true.
    pub fn and_lit(&mut self, lits: &[Lit]) -> Lit {
        if lits.len() == 1 {
            return lits[0];
        }
        let aux = self.new_var().positive();
        if lits.is_empty() {
            self.force(aux);
            return aux;
        }
        // aux -> each lit
        for &l in lits {
            self.clause(&[!aux, l]);
        }
        // all lits -> aux
        let mut c: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        c.push(aux);
        self.clause(&c);
        aux
    }

    /// Returns a literal equivalent to the disjunction of `lits`.
    ///
    /// The empty disjunction yields a literal that is always false.
    pub fn or_lit(&mut self, lits: &[Lit]) -> Lit {
        if lits.len() == 1 {
            return lits[0];
        }
        let aux = self.new_var().positive();
        if lits.is_empty() {
            self.force(!aux);
            return aux;
        }
        // each lit -> aux
        for &l in lits {
            self.clause(&[!l, aux]);
        }
        // aux -> some lit
        let mut c: Vec<Lit> = lits.to_vec();
        c.insert(0, !aux);
        self.clause(&c);
        aux
    }

    /// Encodes a *rule*: `⋀ body → ⋁ᵢ (⋀ headᵢ)` where each disjunct is a
    /// conjunction of literals.  This is exactly the shape of a ground NTGD /
    /// NDTGD under the stable model grounding.
    pub fn rule(&mut self, body: &[Lit], head_disjuncts: &[Vec<Lit>]) {
        let disjunct_lits: Vec<Lit> = head_disjuncts
            .iter()
            .map(|conj| self.and_lit(conj))
            .collect();
        self.implies_any(body, &disjunct_lits);
    }

    /// Adds "at least one of `lits`".
    pub fn at_least_one(&mut self, lits: &[Lit]) {
        self.clause(lits);
    }

    /// Adds "at most one of `lits`" (pairwise encoding).
    pub fn at_most_one(&mut self, lits: &[Lit]) {
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                self.clause(&[!lits[i], !lits[j]]);
            }
        }
    }

    /// Adds "exactly one of `lits`".
    pub fn exactly_one(&mut self, lits: &[Lit]) {
        self.at_least_one(lits);
        self.at_most_one(lits);
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// Solves under assumptions.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solver.solve(assumptions)
    }

    /// Solves without assumptions.
    pub fn solve_unconstrained(&mut self) -> SolveResult {
        self.solver.solve(&[])
    }

    /// Read-only access to the underlying solver (for statistics).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Mutable access to the underlying solver.
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_lit_is_equivalent_to_conjunction() {
        let mut b = CnfBuilder::new();
        let x = b.new_var().positive();
        let y = b.new_var().positive();
        let a = b.and_lit(&[x, y]);
        b.force(a);
        let m = b.solve(&[]).model().unwrap().to_vec();
        assert!(m[x.var().index()] && m[y.var().index()]);
        // Forcing ¬x makes it unsatisfiable.
        b.force(!x);
        assert!(!b.solve(&[]).is_sat());
    }

    #[test]
    fn or_lit_is_equivalent_to_disjunction() {
        let mut b = CnfBuilder::new();
        let x = b.new_var().positive();
        let y = b.new_var().positive();
        let o = b.or_lit(&[x, y]);
        b.force(o);
        b.force(!x);
        let m = b.solve(&[]).model().unwrap().to_vec();
        assert!(m[y.var().index()]);
        b.force(!y);
        assert!(!b.solve(&[]).is_sat());
    }

    #[test]
    fn empty_and_or() {
        let mut b = CnfBuilder::new();
        let t = b.and_lit(&[]);
        let f = b.or_lit(&[]);
        b.force(t);
        assert!(b.solve(&[]).is_sat());
        b.force(f);
        assert!(!b.solve(&[]).is_sat());
    }

    #[test]
    fn rule_encoding_requires_some_disjunct_when_body_holds() {
        // body: x.  head: (y ∧ z) ∨ w.
        let mut b = CnfBuilder::new();
        let x = b.new_var().positive();
        let y = b.new_var().positive();
        let z = b.new_var().positive();
        let w = b.new_var().positive();
        b.rule(&[x], &[vec![y, z], vec![w]]);
        b.force(x);
        b.force(!w);
        let m = b.solve(&[]).model().unwrap().to_vec();
        assert!(m[y.var().index()] && m[z.var().index()]);
        // Forbidding both disjuncts contradicts the body.
        b.force(!y);
        assert!(!b.solve(&[]).is_sat());
    }

    #[test]
    fn rule_with_false_body_is_vacuous() {
        let mut b = CnfBuilder::new();
        let x = b.new_var().positive();
        let y = b.new_var().positive();
        b.rule(&[x], &[vec![y]]);
        b.force(!x);
        b.force(!y);
        assert!(b.solve(&[]).is_sat());
    }

    #[test]
    fn exactly_one_encoding() {
        let mut b = CnfBuilder::new();
        let vs: Vec<Lit> = b.new_vars(4).into_iter().map(|v| v.positive()).collect();
        b.exactly_one(&vs);
        let m = b.solve(&[]).model().unwrap().to_vec();
        let count = vs.iter().filter(|l| m[l.var().index()]).count();
        assert_eq!(count, 1);
        // Forcing two of them true is unsatisfiable.
        b.force(vs[0]);
        b.force(vs[1]);
        assert!(!b.solve(&[]).is_sat());
    }

    #[test]
    fn implies_all_and_any() {
        let mut b = CnfBuilder::new();
        let x = b.new_var().positive();
        let y = b.new_var().positive();
        let z = b.new_var().positive();
        b.implies_all(&[x, y], z);
        b.force(x);
        b.force(y);
        let m = b.solve(&[]).model().unwrap().to_vec();
        assert!(m[z.var().index()]);
        let mut b2 = CnfBuilder::new();
        let x = b2.new_var().positive();
        let y = b2.new_var().positive();
        let z = b2.new_var().positive();
        b2.implies_any(&[x], &[y, z]);
        b2.force(x);
        b2.force(!y);
        let m = b2.solve(&[]).model().unwrap().to_vec();
        assert!(m[z.var().index()]);
    }
}
