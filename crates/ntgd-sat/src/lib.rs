//! # ntgd-sat
//!
//! A small, dependency-free CDCL SAT solver.
//!
//! The complexity-optimal algorithms of the paper (Theorem 6, Theorem 12,
//! Theorem 14) are guess-and-check procedures that consult an **NP oracle**:
//! the stability check of Section 5.2 is a coNP problem, and candidate-model
//! generation is an NP problem.  This crate provides that oracle as a
//! conflict-driven clause-learning SAT solver with watched literals, 1-UIP
//! clause learning, activity-based decision heuristics, restarts and
//! incremental solving under assumptions.
//!
//! The solver is deliberately compact (no preprocessing, no clause deletion)
//! but fully general; [`CnfBuilder`] adds the usual Tseitin-style helpers for
//! encoding implications whose heads are disjunctions of conjunctions, which
//! is exactly the shape produced by grounding NTGDs with existential
//! variables.

pub mod cnf;
pub mod solver;
pub mod types;

pub use cnf::CnfBuilder;
pub use solver::{SolveResult, Solver};
pub use types::{Lit, Var};
