//! Weak-acyclicity (paper, Section 4.1).
//!
//! A set `Σ` of NTGDs is weakly acyclic if no cycle of the position graph of
//! `Σ⁺` goes through a special edge; equivalently, no special edge has both
//! endpoints in the same strongly connected component.

use ntgd_core::{DisjunctiveProgram, Position, Program};

use crate::position_graph::{EdgeKind, PositionGraph};

/// The outcome of a weak-acyclicity check, with a witness when the check
/// fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeakAcyclicityReport {
    /// `true` if the program is weakly acyclic.
    pub weakly_acyclic: bool,
    /// A special edge lying on a cycle, if any.
    pub offending_edge: Option<(Position, Position)>,
}

impl WeakAcyclicityReport {
    fn acyclic() -> Self {
        WeakAcyclicityReport {
            weakly_acyclic: true,
            offending_edge: None,
        }
    }
}

/// Checks weak-acyclicity of a normal program (`WATGD¬` membership): the
/// position graph of `Σ⁺` must have no cycle through a special edge.
pub fn weak_acyclicity_report(program: &Program) -> WeakAcyclicityReport {
    let graph = PositionGraph::build(&program.positive_part());
    let scc = graph.strongly_connected_components();
    for (from, to, kind) in graph.edges() {
        if *kind == EdgeKind::Special && scc.get(from) == scc.get(to) {
            return WeakAcyclicityReport {
                weakly_acyclic: false,
                offending_edge: Some((*from, *to)),
            };
        }
    }
    WeakAcyclicityReport::acyclic()
}

/// Returns `true` if the program is weakly acyclic.
pub fn is_weakly_acyclic(program: &Program) -> bool {
    weak_acyclicity_report(program).weakly_acyclic
}

/// Weak-acyclicity for disjunctive programs (`WATGD¬,∨`, Section 6): the check
/// is performed on `Σ⁺,∧` — negative literals removed and the disjunction
/// turned into a conjunction.
pub fn is_weakly_acyclic_disjunctive(program: &DisjunctiveProgram) -> bool {
    is_weakly_acyclic(&program.positive_conjunctive_part())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_parser::{parse_program, parse_unit};

    #[test]
    fn example1_program_is_weakly_acyclic() {
        let p = parse_program(
            "person(X) -> hasFather(X, Y).\
             hasFather(X, Y) -> sameAs(Y, Y).\
             hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).",
        )
        .unwrap();
        assert!(is_weakly_acyclic(&p));
    }

    #[test]
    fn the_classical_infinite_person_chain_is_not_weakly_acyclic() {
        let p = parse_program("person(X) -> parent(X, Y), person(Y).").unwrap();
        let report = weak_acyclicity_report(&p);
        assert!(!report.weakly_acyclic);
        let (from, to) = report.offending_edge.unwrap();
        assert_eq!(from.predicate.as_str(), "person");
        // The special edge goes into one of the generated positions.
        assert!(to.predicate.as_str() == "parent" || to.predicate.as_str() == "person");
    }

    #[test]
    fn special_edges_without_cycles_are_fine() {
        let p = parse_program("p(X) -> q(X, Y). q(X, Y) -> r(Y).").unwrap();
        assert!(is_weakly_acyclic(&p));
    }

    #[test]
    fn cycle_through_regular_edges_only_is_fine() {
        let p = parse_program("p(X) -> q(X). q(X) -> p(X).").unwrap();
        assert!(is_weakly_acyclic(&p));
    }

    #[test]
    fn negative_literals_are_ignored_by_the_check() {
        // The negated atom would create a cycle if it were considered, but
        // weak-acyclicity only looks at Σ⁺.
        let p = parse_program("p(X), not q(X) -> q(X). q(X) -> p(X).").unwrap();
        assert!(is_weakly_acyclic(&p));
    }

    #[test]
    fn two_rule_cycle_with_value_creation_is_rejected() {
        let p = parse_program("p(X) -> q(X, Y). q(X, Y) -> p(Y).").unwrap();
        assert!(!is_weakly_acyclic(&p));
    }

    #[test]
    fn disjunctive_weak_acyclicity_uses_the_conjunctive_transform() {
        // Example 5 of the paper (the translated program is *not* weakly
        // acyclic, but the original disjunctive one is).
        let unit = parse_unit("p(X) -> s(X, Y). r(X) -> p(X) | s(X, X).").unwrap();
        let d = unit.disjunctive_program().unwrap();
        assert!(is_weakly_acyclic_disjunctive(&d));
        // A disjunctive rule that creates a value feeding back into itself.
        let unit = parse_unit("p(X) -> q(X, Y) | r(X). q(X, Y) -> p(Y).").unwrap();
        let d = unit.disjunctive_program().unwrap();
        assert!(!is_weakly_acyclic_disjunctive(&d));
    }

    #[test]
    fn empty_and_existential_free_programs_are_weakly_acyclic() {
        assert!(is_weakly_acyclic(&Program::new()));
        let p = parse_program("e(X, Y), e(Y, Z) -> e(X, Z).").unwrap();
        assert!(is_weakly_acyclic(&p));
    }
}
