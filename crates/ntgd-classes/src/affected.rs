//! Affected positions (Calì, Gottlob, Kifer \[7\]).
//!
//! A position `p[i]` is *affected* w.r.t. a set of TGDs `Σ` if a labelled null
//! may reach it during the chase.  The set `aff(Σ)` is the smallest set of
//! positions such that
//!
//! * every position hosting an existentially quantified variable in the head
//!   of a rule is affected, and
//! * if a universally quantified variable `X` of a rule `σ` occurs in the body
//!   of `σ` **only** at affected positions, then every head position of `X`
//!   is affected.
//!
//! Affected positions underpin the *weakly-guarded* and
//! *weakly-frontier-guarded* fragments implemented in
//! [`crate::fragments`]: variables occurring at some unaffected position can
//! only ever be bound to database constants and therefore never need to be
//! covered by a guard.
//!
//! For NTGDs the computation is carried out on `Σ⁺` (negative literals are
//! ignored), mirroring how the paper lifts the positive-TGD paradigms to
//! normal rules.

use std::collections::{BTreeMap, BTreeSet};

use ntgd_core::{Ntgd, Position, Program, Symbol, Term};

/// The set of affected positions of a program, with helpers for interrogating
/// which body variables of a rule can only be bound to constants.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AffectedPositions {
    positions: BTreeSet<Position>,
}

impl AffectedPositions {
    /// Computes the affected positions of `Σ⁺` by the least-fixpoint
    /// construction described in the module documentation.
    pub fn compute(program: &Program) -> AffectedPositions {
        let positive = program.positive_part();
        let mut affected: BTreeSet<Position> = BTreeSet::new();

        // Base step: head positions of existential variables.
        for (_, rule) in positive.iter() {
            let existential = rule.existential_variables();
            for atom in rule.head() {
                for (i, term) in atom.args().iter().enumerate() {
                    if let Term::Var(v) = term {
                        if existential.contains(v) {
                            affected.insert(Position::new(atom.predicate(), i + 1));
                        }
                    }
                }
            }
        }

        // Inductive step: propagate through universal variables whose body
        // occurrences are all affected.
        loop {
            let mut changed = false;
            for (_, rule) in positive.iter() {
                let body_positions = body_positions_by_variable(rule);
                for (variable, positions) in &body_positions {
                    if positions.is_empty() || !positions.iter().all(|p| affected.contains(p)) {
                        continue;
                    }
                    for atom in rule.head() {
                        for (i, term) in atom.args().iter().enumerate() {
                            if *term == Term::Var(*variable) {
                                let pos = Position::new(atom.predicate(), i + 1);
                                if affected.insert(pos) {
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        AffectedPositions {
            positions: affected,
        }
    }

    /// Returns `true` if the position is affected.
    pub fn contains(&self, position: Position) -> bool {
        self.positions.contains(&position)
    }

    /// The affected positions, in a deterministic order.
    pub fn positions(&self) -> impl Iterator<Item = &Position> + '_ {
        self.positions.iter()
    }

    /// Number of affected positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` if no position is affected (e.g. for existential-free
    /// programs).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The *harmful* variables of a rule: universally quantified variables
    /// whose positive-body occurrences are **all** at affected positions.
    /// Only these variables may ever be bound to labelled nulls, so only they
    /// must be covered by a weak guard.
    pub fn harmful_variables(&self, rule: &Ntgd) -> BTreeSet<Symbol> {
        body_positions_by_variable(rule)
            .into_iter()
            .filter(|(_, positions)| {
                !positions.is_empty() && positions.iter().all(|p| self.contains(*p))
            })
            .map(|(v, _)| v)
            .collect()
    }
}

/// Positions (in the positive body) at which each universally quantified
/// variable of the rule occurs.
fn body_positions_by_variable(rule: &Ntgd) -> BTreeMap<Symbol, Vec<Position>> {
    let mut map: BTreeMap<Symbol, Vec<Position>> = BTreeMap::new();
    for atom in rule.body_positive() {
        for (i, term) in atom.args().iter().enumerate() {
            if let Term::Var(v) = term {
                map.entry(*v)
                    .or_default()
                    .push(Position::new(atom.predicate(), i + 1));
            }
        }
    }
    map
}

/// Convenience wrapper returning the affected positions as a set.
pub fn affected_positions(program: &Program) -> BTreeSet<Position> {
    AffectedPositions::compute(program).positions.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::Symbol;
    use ntgd_parser::{parse_program, parse_rule};

    fn pos_of(p: &str, i: usize) -> Position {
        Position::new(Symbol::intern(p), i)
    }

    #[test]
    fn existential_free_programs_have_no_affected_positions() {
        let p = parse_program("e(X, Y), e(Y, Z) -> e(X, Z). p(X), not q(X) -> r(X).").unwrap();
        let aff = AffectedPositions::compute(&p);
        assert!(aff.is_empty());
    }

    #[test]
    fn existential_head_positions_are_affected() {
        let p = parse_program("person(X) -> hasFather(X, Y).").unwrap();
        let aff = AffectedPositions::compute(&p);
        assert!(aff.contains(pos_of("hasFather", 2)));
        assert!(!aff.contains(pos_of("hasFather", 1)));
        assert!(!aff.contains(pos_of("person", 1)));
        assert_eq!(aff.len(), 1);
    }

    #[test]
    fn affectedness_propagates_through_fully_affected_variables() {
        // The null created in q[2] flows to r[1] because Y occurs in the body
        // of the second rule only at the affected position q[2].
        let p = parse_program("p(X) -> q(X, Y). q(X, Y) -> r(Y).").unwrap();
        let aff = AffectedPositions::compute(&p);
        assert!(aff.contains(pos_of("q", 2)));
        assert!(aff.contains(pos_of("r", 1)));
        assert!(!aff.contains(pos_of("q", 1)));
    }

    #[test]
    fn an_unaffected_occurrence_blocks_propagation() {
        // Y also occurs at the unaffected position s[1], so it can only be
        // bound to constants and r[1] stays unaffected.
        let p = parse_program("p(X) -> q(X, Y). q(X, Y), s(Y) -> r(Y).").unwrap();
        let aff = AffectedPositions::compute(&p);
        assert!(aff.contains(pos_of("q", 2)));
        assert!(!aff.contains(pos_of("r", 1)));
    }

    #[test]
    fn negative_literals_do_not_contribute_positions() {
        let p = parse_program("p(X) -> q(X, Y). q(X, Y), not s(Y) -> r(Y).").unwrap();
        let aff = AffectedPositions::compute(&p);
        // The negated occurrence of Y is ignored; its only positive
        // occurrence q[2] is affected, so r[1] becomes affected.
        assert!(aff.contains(pos_of("r", 1)));
    }

    #[test]
    fn harmful_variables_are_those_bound_only_at_affected_positions() {
        let p = parse_program("p(X) -> q(X, Y). q(X, Y), s(X) -> t(X, Y).").unwrap();
        let aff = AffectedPositions::compute(&p);
        let rule = parse_rule("q(X, Y), s(X) -> t(X, Y).").unwrap();
        let harmful = aff.harmful_variables(&rule);
        assert!(harmful.contains(&Symbol::intern("Y")));
        assert!(!harmful.contains(&Symbol::intern("X")));
    }

    #[test]
    fn recursive_value_creation_affects_every_reachable_position() {
        let p = parse_program("person(X) -> parent(X, Y), person(Y).").unwrap();
        let aff = AffectedPositions::compute(&p);
        assert!(aff.contains(pos_of("parent", 2)));
        assert!(aff.contains(pos_of("person", 1)));
        // Once person[1] is affected, X itself becomes harmful and parent[1]
        // is reached too.
        assert!(aff.contains(pos_of("parent", 1)));
    }
}
