//! Stickiness (paper, Section 4.2 and Figure 1).
//!
//! Stickiness is defined through an inductive *marking* of body-variable
//! occurrences:
//!
//! * **base step** — for every rule `σ` and every variable `V` occurring in
//!   the body of `σ`, if there is a head atom of `σ` in which `V` does not
//!   occur, then every occurrence of `V` in the body of `σ` is marked;
//! * **inductive step** — for every rule `σ` and every variable `V` occurring
//!   in the head of `σ` at some position `π`, if a marked variable occurs at
//!   position `π` in the body of some rule `σ'`, then every occurrence of `V`
//!   in the body of `σ` is marked.
//!
//! A program is *sticky* if no rule has a marked variable occurring more than
//! once in its body.  For NTGDs, negated atoms are first turned into positive
//! atoms (Section 4.2, following \[1\]).

use std::collections::BTreeSet;

use ntgd_core::{Literal, Ntgd, Position, Program, Symbol, Term};

/// A marked body variable: which rule, and which variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct MarkedVariable {
    /// Index of the rule in the program.
    pub rule_index: usize,
    /// The marked variable.
    pub variable: Symbol,
}

/// Turns every negated body atom into a positive one (the transformation used
/// to extend stickiness to NTGDs).
fn positivised(program: &Program) -> Vec<Ntgd> {
    program
        .rules()
        .iter()
        .map(|r| {
            let body: Vec<Literal> = r
                .body()
                .iter()
                .map(|l| Literal::positive(l.atom().clone()))
                .collect();
            Ntgd::new(body, r.head().to_vec()).expect("positivised rule remains safe")
        })
        .collect()
}

/// Positions at which a variable occurs in the body of a rule.
fn body_positions_of(rule: &Ntgd, variable: Symbol) -> Vec<Position> {
    let mut out = Vec::new();
    for lit in rule.body() {
        let atom = lit.atom();
        for (i, t) in atom.args().iter().enumerate() {
            if *t == Term::Var(variable) {
                out.push(Position::new(atom.predicate(), i + 1));
            }
        }
    }
    out
}

/// Runs the marking procedure and returns the set of marked body variables
/// (per rule).
pub fn marked_variables(program: &Program) -> BTreeSet<MarkedVariable> {
    let rules = positivised(program);
    let mut marked: BTreeSet<MarkedVariable> = BTreeSet::new();
    // Base step.
    for (idx, rule) in rules.iter().enumerate() {
        for v in rule.universal_variables() {
            let in_every_head_atom = rule.head().iter().all(|a| a.args().contains(&Term::Var(v)));
            if !in_every_head_atom {
                marked.insert(MarkedVariable {
                    rule_index: idx,
                    variable: v,
                });
            }
        }
    }
    // Inductive propagation (head to body) until fixpoint.
    loop {
        let mut changed = false;
        // Positions at which some marked variable occurs in some body.
        let marked_positions: BTreeSet<Position> = marked
            .iter()
            .flat_map(|m| body_positions_of(&rules[m.rule_index], m.variable))
            .collect();
        for (idx, rule) in rules.iter().enumerate() {
            for v in rule.universal_variables() {
                if marked.contains(&MarkedVariable {
                    rule_index: idx,
                    variable: v,
                }) {
                    continue;
                }
                // Does v occur in the head of `rule` at a marked position?
                let occurs_at_marked_position = rule.head().iter().any(|a| {
                    a.args().iter().enumerate().any(|(i, t)| {
                        *t == Term::Var(v)
                            && marked_positions.contains(&Position::new(a.predicate(), i + 1))
                    })
                });
                if occurs_at_marked_position {
                    marked.insert(MarkedVariable {
                        rule_index: idx,
                        variable: v,
                    });
                    changed = true;
                }
            }
        }
        if !changed {
            return marked;
        }
    }
}

/// Returns `true` if the program is sticky: no rule contains two occurrences
/// of a marked variable in its body.
pub fn is_sticky(program: &Program) -> bool {
    let rules = positivised(program);
    let marked = marked_variables(program);
    for m in &marked {
        let occurrences = body_positions_of(&rules[m.rule_index], m.variable).len();
        if occurrences > 1 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_parser::parse_program;

    /// The sticky rule set of Figure 1(a), first listing.
    fn figure1_sticky() -> Program {
        parse_program(
            "t(X, Y, Z) -> s(Y, W).\
             r(X, Y), p(Y, Z) -> t(X, Y, W).",
        )
        .unwrap()
    }

    /// The non-sticky rule set of Figure 1(a), second listing.
    fn figure1_non_sticky() -> Program {
        parse_program(
            "t(X, Y, Z) -> s(X, W).\
             r(X, Y), p(Y, Z) -> t(X, Y, W).",
        )
        .unwrap()
    }

    #[test]
    fn figure1a_first_set_is_sticky() {
        assert!(is_sticky(&figure1_sticky()));
    }

    #[test]
    fn figure1a_second_set_is_not_sticky() {
        // The join variable Y of the second rule becomes marked (it is
        // propagated into t[2], and t[2]'s variable Y does not reach the head
        // of the first rule), and Y occurs twice in the body.
        assert!(!is_sticky(&figure1_non_sticky()));
    }

    #[test]
    fn base_marking_marks_variables_missing_from_some_head_atom() {
        let p = parse_program("t(X, Y, Z) -> s(Y, W).").unwrap();
        let marked = marked_variables(&p);
        let vars: BTreeSet<&str> = marked.iter().map(|m| m.variable.as_str()).collect();
        assert!(vars.contains("X"));
        assert!(vars.contains("Z"));
        assert!(!vars.contains("Y"));
    }

    #[test]
    fn cartesian_product_rules_are_sticky() {
        // The paper notes sticky sets can express cartesian products.
        let p = parse_program("p(X), s(Y) -> t(X, Y).").unwrap();
        assert!(is_sticky(&p));
        let marked = marked_variables(&p);
        assert!(marked.is_empty());
    }

    #[test]
    fn non_sticky_join_detected() {
        // Classic non-sticky example: the join variable disappears from the
        // head.
        let p = parse_program("e(X, Y), e(Y, Z) -> e(X, Z).").unwrap();
        assert!(!is_sticky(&p));
    }

    #[test]
    fn negated_atoms_participate_in_the_marking() {
        // Same shape as the previous test but with one literal negated; the
        // definition converts it to a positive atom first.
        let p = parse_program("e(X, Y), not e(Y, Z), f(Y, Z) -> e(X, Z).").unwrap();
        assert!(!is_sticky(&p));
    }

    #[test]
    fn single_occurrence_of_marked_variables_is_fine() {
        let p = parse_program("p(X, Y) -> q(X).").unwrap();
        // Y is marked (missing from the head) but occurs only once.
        assert!(is_sticky(&p));
    }

    #[test]
    fn empty_program_is_sticky() {
        assert!(is_sticky(&Program::new()));
    }
}
