//! Syntactic fragments of (N)TGDs beyond the three paradigms studied in the
//! paper.
//!
//! The paper's Section 4 examines weak-acyclicity, stickiness and guardedness.
//! Its related-work discussion (and the broader Datalog± literature it builds
//! on, [4, 7, 8, 24]) also works with several finer-grained fragments, which
//! this module makes checkable so that workloads can be placed precisely in
//! the decidability landscape:
//!
//! * **full** — no existentially quantified variables (plain normal Datalog
//!   rules);
//! * **linear** — at most one positive body atom;
//! * **atomic-head** — exactly one head atom;
//! * **frontier-1** — at most one frontier variable;
//! * **frontier-guarded** — some positive body atom covers every frontier
//!   variable;
//! * **weakly guarded** — some positive body atom covers every *harmful*
//!   body variable (variables occurring only at affected positions, see
//!   [`crate::affected`]);
//! * **weakly frontier-guarded** — some positive body atom covers every
//!   harmful frontier variable.
//!
//! All checks are performed on the rules as given; for NTGDs the affected
//! positions are computed on `Σ⁺`, in line with how the paper lifts the
//! positive-TGD paradigms to normal rules.

use std::collections::BTreeSet;

use ntgd_core::{Ntgd, Program, Symbol, Term};

use crate::affected::AffectedPositions;

/// Returns `true` if the rule has no existentially quantified variables.
pub fn is_full_rule(rule: &Ntgd) -> bool {
    !rule.has_existential()
}

/// Returns `true` if every rule of the program is existential-free (a normal
/// Datalog program).
pub fn is_full(program: &Program) -> bool {
    program.rules().iter().all(is_full_rule)
}

/// Returns `true` if the rule has at most one positive body atom.
pub fn is_linear_rule(rule: &Ntgd) -> bool {
    rule.body_positive().len() <= 1
}

/// Returns `true` if every rule of the program is linear.
pub fn is_linear(program: &Program) -> bool {
    program.rules().iter().all(is_linear_rule)
}

/// Returns `true` if the rule has exactly one head atom.
pub fn is_atomic_head_rule(rule: &Ntgd) -> bool {
    rule.head().len() == 1
}

/// Returns `true` if every rule of the program has a single head atom.
pub fn is_atomic_head(program: &Program) -> bool {
    program.rules().iter().all(is_atomic_head_rule)
}

/// Returns `true` if the rule has at most one frontier variable.
pub fn is_frontier_one_rule(rule: &Ntgd) -> bool {
    rule.frontier_variables().len() <= 1
}

/// Returns `true` if every rule of the program has at most one frontier
/// variable.
pub fn is_frontier_one(program: &Program) -> bool {
    program.rules().iter().all(is_frontier_one_rule)
}

/// Returns `true` if some positive body atom of the rule contains all the
/// given variables.
fn some_atom_covers(rule: &Ntgd, variables: &BTreeSet<Symbol>) -> bool {
    if variables.is_empty() {
        return true;
    }
    rule.body_positive().iter().any(|atom| {
        variables
            .iter()
            .all(|v| atom.args().contains(&Term::Var(*v)))
    })
}

/// Returns `true` if some positive body atom covers every frontier variable
/// of the rule.
pub fn is_frontier_guarded_rule(rule: &Ntgd) -> bool {
    some_atom_covers(rule, &rule.frontier_variables())
}

/// Returns `true` if every rule of the program is frontier-guarded.
pub fn is_frontier_guarded(program: &Program) -> bool {
    program.rules().iter().all(is_frontier_guarded_rule)
}

/// Returns `true` if some positive body atom of the rule covers every harmful
/// body variable (a variable all of whose positive-body occurrences lie at
/// affected positions).
pub fn is_weakly_guarded_rule(rule: &Ntgd, affected: &AffectedPositions) -> bool {
    some_atom_covers(rule, &affected.harmful_variables(rule))
}

/// Returns `true` if every rule of the program is weakly guarded w.r.t. the
/// program's affected positions.
pub fn is_weakly_guarded(program: &Program) -> bool {
    let affected = AffectedPositions::compute(program);
    program
        .rules()
        .iter()
        .all(|rule| is_weakly_guarded_rule(rule, &affected))
}

/// Returns `true` if some positive body atom of the rule covers every harmful
/// frontier variable.
pub fn is_weakly_frontier_guarded_rule(rule: &Ntgd, affected: &AffectedPositions) -> bool {
    let harmful = affected.harmful_variables(rule);
    let frontier = rule.frontier_variables();
    let harmful_frontier: BTreeSet<Symbol> = harmful.intersection(&frontier).copied().collect();
    some_atom_covers(rule, &harmful_frontier)
}

/// Returns `true` if every rule of the program is weakly frontier-guarded
/// w.r.t. the program's affected positions.
pub fn is_weakly_frontier_guarded(program: &Program) -> bool {
    let affected = AffectedPositions::compute(program);
    program
        .rules()
        .iter()
        .all(|rule| is_weakly_frontier_guarded_rule(rule, &affected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guardedness::is_guarded;
    use ntgd_parser::{parse_program, parse_rule};

    const EXAMPLE1: &str = "person(X) -> hasFather(X, Y).\
         hasFather(X, Y) -> sameAs(Y, Y).\
         hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).";

    #[test]
    fn full_rules_have_no_existentials() {
        assert!(is_full_rule(
            &parse_rule("e(X, Y), e(Y, Z) -> e(X, Z).").unwrap()
        ));
        assert!(!is_full_rule(
            &parse_rule("person(X) -> hasFather(X, Y).").unwrap()
        ));
        assert!(!is_full(&parse_program(EXAMPLE1).unwrap()));
    }

    #[test]
    fn linear_rules_have_at_most_one_positive_body_atom() {
        assert!(is_linear_rule(
            &parse_rule("person(X) -> hasFather(X, Y).").unwrap()
        ));
        // Negative literals do not count against linearity.
        assert!(is_linear_rule(
            &parse_rule("p(X), not q(X) -> r(X).").unwrap()
        ));
        assert!(!is_linear_rule(
            &parse_rule("e(X, Y), e(Y, Z) -> e(X, Z).").unwrap()
        ));
    }

    #[test]
    fn atomic_head_counts_head_atoms() {
        assert!(is_atomic_head_rule(
            &parse_rule("p(X) -> q(X, Y).").unwrap()
        ));
        assert!(!is_atomic_head_rule(
            &parse_rule("person(X) -> parent(X, Y), person(Y).").unwrap()
        ));
    }

    #[test]
    fn frontier_one_counts_frontier_variables_only() {
        // X and Z occur in the body, but only X is propagated to the head.
        assert!(is_frontier_one_rule(
            &parse_rule("t(X, Y, Z) -> s(X, W).").unwrap()
        ));
        assert!(!is_frontier_one_rule(
            &parse_rule("r(X, Y) -> s(X, Y, W).").unwrap()
        ));
    }

    #[test]
    fn frontier_guardedness_is_weaker_than_guardedness() {
        // The transitivity rule is not guarded (no atom covers X, Y, Z) but it
        // is frontier-guarded?  No: the frontier is {X, Z}, and no single body
        // atom contains both.
        let transitive = parse_program("e(X, Y), e(Y, Z) -> e(X, Z).").unwrap();
        assert!(!is_guarded(&transitive));
        assert!(!is_frontier_guarded(&transitive));

        // Here the frontier is just {X}, covered by either atom, while the
        // full body {X, Y} is covered by neither... except r(X,Y); so the rule
        // is guarded too.  Drop the covering atom to get a separation:
        let p = parse_program("r(X, Y), s(Y, Z) -> t(X, W).").unwrap();
        assert!(!is_guarded(&p));
        assert!(is_frontier_guarded(&p));
    }

    #[test]
    fn guarded_programs_are_frontier_guarded_and_weakly_guarded() {
        let p =
            parse_program("person(X) -> hasFather(X, Y). hasFather(X, Y) -> person(Y).").unwrap();
        assert!(is_guarded(&p));
        assert!(is_frontier_guarded(&p));
        assert!(is_weakly_guarded(&p));
        assert!(is_weakly_frontier_guarded(&p));
    }

    #[test]
    fn weak_guardedness_ignores_variables_bound_at_unaffected_positions() {
        // The join rule is not guarded, but every joined variable lives at an
        // unaffected position (no existentials anywhere), so it is weakly
        // guarded.
        let p = parse_program("e(X, Y), e(Y, Z) -> e(X, Z).").unwrap();
        assert!(!is_guarded(&p));
        assert!(is_weakly_guarded(&p));
        assert!(is_weakly_frontier_guarded(&p));
    }

    #[test]
    fn weak_guardedness_still_requires_covering_harmful_joins() {
        // The swap rule makes both q-positions affected, so in the join rule
        // X, Y and Z are all harmful and no single atom covers them.
        let p = parse_program("p(X) -> q(X, Y). q(X, Y) -> q(Y, X). q(X, Y), q(Y, Z) -> t(X, Z).")
            .unwrap();
        assert!(!is_weakly_guarded(&p));
        // Adding a wide guard atom restores weak guardedness.
        let p = parse_program(
            "p(X) -> q(X, Y). q(X, Y) -> q(Y, X). g(X, Y, Z), q(X, Y), q(Y, Z) -> t(X, Z).",
        )
        .unwrap();
        assert!(is_weakly_guarded(&p));
    }

    #[test]
    fn example1_is_frontier_guarded_but_not_guarded() {
        let p = parse_program(EXAMPLE1).unwrap();
        assert!(!is_guarded(&p));
        // The abnormality rule's frontier is just {X}, which hasFather(X, Y)
        // covers, so the program is frontier-guarded even though it is not
        // guarded (no atom covers X, Y and Z together).
        assert!(is_frontier_guarded(&p));
        // X only occurs at the unaffected position hasFather[1], so no weak
        // (frontier) guard is needed at all.
        assert!(is_weakly_frontier_guarded(&p));
        assert!(!is_weakly_guarded(&p));
    }

    #[test]
    fn empty_program_belongs_to_every_fragment() {
        let p = Program::new();
        assert!(is_full(&p));
        assert!(is_linear(&p));
        assert!(is_atomic_head(&p));
        assert!(is_frontier_one(&p));
        assert!(is_frontier_guarded(&p));
        assert!(is_weakly_guarded(&p));
        assert!(is_weakly_frontier_guarded(&p));
    }
}
