//! The graph of rule dependencies (GRD) and acyclicity of that graph (aGRD).
//!
//! The GRD is the classical tool of Baget et al. [2, 4] for analysing when
//! the application of one rule may *trigger* another: rule `σ₂` depends on
//! rule `σ₁` when an atom produced by applying `σ₁` can take part in a new
//! application of `σ₂`.  If the GRD is acyclic (aGRD) then every chase
//! sequence terminates, because the rules can only fire along finitely many
//! dependency chains.
//!
//! The dependency test implemented here is the standard unification-based
//! over-approximation: `σ₂` depends on `σ₁` if some head atom of `σ₁` unifies
//! with some positive body atom of `σ₂`, where
//!
//! * existentially quantified variables of `σ₁` stand for *fresh labelled
//!   nulls* — they can never be unified with a constant of `σ₂`, nor forced
//!   equal to a *different* existential variable of `σ₁`;
//! * universally quantified variables of either rule unify freely.
//!
//! This test is sound (every real trigger chain induces an edge) but not
//! complete (it may add edges for rule pairs that can never actually interact
//! once whole-body satisfaction is taken into account), which is the usual
//! trade-off for a polynomial-time check.  As everywhere else in this crate,
//! NTGDs are analysed through their positive part `Σ⁺`.

use std::collections::{BTreeMap, BTreeSet};

use ntgd_core::{Atom, Ntgd, Program, Symbol, Term};

/// A node of the unification graph used by [`head_body_unify`]: either a
/// concrete value class or a variable of one of the two rules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum UnifTerm {
    /// A constant (shared alphabet).
    Const(Symbol),
    /// An existential variable of the head rule: a fresh labelled null.
    FreshNull(Symbol),
    /// A universally quantified variable of the head rule.
    HeadVar(Symbol),
    /// A variable of the body rule.
    BodyVar(Symbol),
}

/// Union-find over [`UnifTerm`] classes with incompatibility detection.
#[derive(Default)]
struct Unifier {
    parent: BTreeMap<UnifTerm, UnifTerm>,
}

impl Unifier {
    fn find(&mut self, t: UnifTerm) -> UnifTerm {
        let p = *self.parent.entry(t).or_insert(t);
        if p == t {
            return t;
        }
        let root = self.find(p);
        self.parent.insert(t, root);
        root
    }

    /// Merges the classes of `a` and `b`; returns `false` when the merge is
    /// impossible (two distinct constants, a constant with a fresh null, or
    /// two distinct fresh nulls).
    fn union(&mut self, a: UnifTerm, b: UnifTerm) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return true;
        }
        let rank = |t: &UnifTerm| match t {
            UnifTerm::Const(_) => 3,
            UnifTerm::FreshNull(_) => 2,
            UnifTerm::HeadVar(_) | UnifTerm::BodyVar(_) => 1,
        };
        let (hi, lo) = if rank(&ra) >= rank(&rb) {
            (ra, rb)
        } else {
            (rb, ra)
        };
        // Two "rigid" terms (constants or fresh nulls) can never be merged
        // unless they are identical.
        if rank(&lo) >= 2 {
            return false;
        }
        self.parent.insert(lo, hi);
        true
    }
}

fn head_term(t: &Term, existential: &BTreeSet<Symbol>) -> UnifTerm {
    match t {
        Term::Const(c) => UnifTerm::Const(*c),
        Term::Null(_) => UnifTerm::Const(Symbol::intern(&format!("{t}"))),
        Term::Var(v) if existential.contains(v) => UnifTerm::FreshNull(*v),
        Term::Var(v) => UnifTerm::HeadVar(*v),
    }
}

fn body_term(t: &Term) -> UnifTerm {
    match t {
        Term::Const(c) => UnifTerm::Const(*c),
        Term::Null(_) => UnifTerm::Const(Symbol::intern(&format!("{t}"))),
        Term::Var(v) => UnifTerm::BodyVar(*v),
    }
}

/// Returns `true` if `head_atom` (an atom produced by `producer`) unifies with
/// `body_atom` (a positive body atom of the candidate dependent rule) under
/// the null-awareness constraints described in the module documentation.
fn head_body_unify(head_atom: &Atom, producer: &Ntgd, body_atom: &Atom) -> bool {
    if head_atom.predicate() != body_atom.predicate() || head_atom.arity() != body_atom.arity() {
        return false;
    }
    let existential = producer.existential_variables();
    let mut unifier = Unifier::default();
    head_atom
        .args()
        .iter()
        .zip(body_atom.args())
        .all(|(h, b)| unifier.union(head_term(h, &existential), body_term(b)))
}

/// Returns `true` if `dependent` depends on `producer`: some head atom of the
/// producer unifies with some positive body atom of the dependent rule.
pub fn rule_depends_on(dependent: &Ntgd, producer: &Ntgd) -> bool {
    producer.head().iter().any(|head_atom| {
        dependent
            .body_positive()
            .iter()
            .any(|body_atom| head_body_unify(head_atom, producer, body_atom))
    })
}

/// The graph of rule dependencies of a program: vertex `i` is the `i`-th rule
/// and an edge `i → j` states that rule `j` depends on rule `i`.
#[derive(Clone, Debug, Default)]
pub struct RuleDependencyGraph {
    rule_count: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl RuleDependencyGraph {
    /// Builds the GRD of the program's positive part.
    pub fn build(program: &Program) -> RuleDependencyGraph {
        let rules: Vec<Ntgd> = program
            .rules()
            .iter()
            .map(ntgd_core::Ntgd::positive_part)
            .collect();
        let mut edges = BTreeSet::new();
        for (i, producer) in rules.iter().enumerate() {
            for (j, dependent) in rules.iter().enumerate() {
                if rule_depends_on(dependent, producer) {
                    edges.insert((i, j));
                }
            }
        }
        RuleDependencyGraph {
            rule_count: rules.len(),
            edges,
        }
    }

    /// Number of rules (vertices).
    pub fn rule_count(&self) -> usize {
        self.rule_count
    }

    /// The edges `producer → dependent`.
    pub fn edges(&self) -> impl Iterator<Item = &(usize, usize)> + '_ {
        self.edges.iter()
    }

    /// Returns `true` if rule `dependent` depends on rule `producer`.
    pub fn has_edge(&self, producer: usize, dependent: usize) -> bool {
        self.edges.contains(&(producer, dependent))
    }

    /// Returns `true` if the graph contains a directed cycle.
    pub fn has_cycle(&self) -> bool {
        // Kahn's algorithm: the graph is acyclic iff all vertices can be
        // removed in topological order.
        let mut indegree = vec![0usize; self.rule_count];
        for (_, to) in &self.edges {
            indegree[*to] += 1;
        }
        let mut queue: Vec<usize> = (0..self.rule_count).filter(|v| indegree[*v] == 0).collect();
        let mut removed = 0usize;
        while let Some(v) = queue.pop() {
            removed += 1;
            for (from, to) in &self.edges {
                if *from == v {
                    indegree[*to] -= 1;
                    if indegree[*to] == 0 {
                        queue.push(*to);
                    }
                }
            }
        }
        removed != self.rule_count
    }

    /// Returns the rules reachable (transitively) from the given rule,
    /// including the rule itself.
    pub fn reachable_from(&self, rule: usize) -> BTreeSet<usize> {
        let mut seen = BTreeSet::from([rule]);
        let mut frontier = vec![rule];
        while let Some(v) = frontier.pop() {
            for (from, to) in &self.edges {
                if *from == v && seen.insert(*to) {
                    frontier.push(*to);
                }
            }
        }
        seen
    }
}

/// Returns `true` if the program's graph of rule dependencies is acyclic
/// (the aGRD condition of [2, 4], which guarantees chase termination).
pub fn is_agrd(program: &Program) -> bool {
    !RuleDependencyGraph::build(program).has_cycle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_parser::{parse_program, parse_rule};

    #[test]
    fn a_rule_feeding_another_produces_an_edge() {
        let p = parse_program("p(X) -> q(X, Y). q(X, Y) -> r(Y).").unwrap();
        let g = RuleDependencyGraph::build(&p);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_cycle());
        assert!(is_agrd(&p));
    }

    #[test]
    fn predicate_mismatch_means_no_dependency() {
        let producer = parse_rule("p(X) -> q(X).").unwrap();
        let dependent = parse_rule("r(X) -> s(X).").unwrap();
        assert!(!rule_depends_on(&dependent, &producer));
    }

    #[test]
    fn existential_output_cannot_unify_with_a_constant() {
        // The produced atom is q(X, fresh-null); the consumer requires the
        // second argument to be the constant a, which a null can never equal.
        let producer = parse_rule("p(X) -> q(X, Y).").unwrap();
        let dependent = parse_rule("q(X, a) -> r(X).").unwrap();
        assert!(!rule_depends_on(&dependent, &producer));
        // With a universally quantified second argument the dependency holds.
        let dependent = parse_rule("q(X, Z) -> r(X).").unwrap();
        assert!(rule_depends_on(&dependent, &producer));
    }

    #[test]
    fn two_distinct_existentials_cannot_be_forced_equal() {
        // The producer invents two distinct nulls; the consumer requires both
        // arguments to be the same value.
        let producer = parse_rule("p(X) -> q(Y, Z).").unwrap();
        let dependent = parse_rule("q(W, W) -> r(W).").unwrap();
        assert!(!rule_depends_on(&dependent, &producer));
        // A single existential repeated does satisfy the join.
        let producer = parse_rule("p(X) -> q(Y, Y).").unwrap();
        assert!(rule_depends_on(&dependent, &producer));
    }

    #[test]
    fn frontier_variables_unify_with_constants() {
        let producer = parse_rule("p(X) -> q(X).").unwrap();
        let dependent = parse_rule("q(a) -> r(a).").unwrap();
        assert!(rule_depends_on(&dependent, &producer));
    }

    #[test]
    fn self_recursive_rules_form_a_cycle() {
        let p = parse_program("e(X, Y), e(Y, Z) -> e(X, Z).").unwrap();
        let g = RuleDependencyGraph::build(&p);
        assert!(g.has_edge(0, 0));
        assert!(g.has_cycle());
        assert!(!is_agrd(&p));
    }

    #[test]
    fn the_person_chain_is_cyclic_but_a_linear_pipeline_is_not() {
        assert!(!is_agrd(
            &parse_program("person(X) -> parent(X, Y), person(Y).").unwrap()
        ));
        assert!(is_agrd(
            &parse_program("a(X) -> b(X, Y). b(X, Y) -> c(Y). c(X) -> d(X).").unwrap()
        ));
    }

    #[test]
    fn negative_literals_do_not_create_dependencies() {
        // The only occurrence of q in the second rule's body is negated, so
        // the positive-part analysis sees no dependency.
        let p = parse_program("p(X) -> q(X). r(X), not q(X) -> s(X).").unwrap();
        let g = RuleDependencyGraph::build(&p);
        assert!(!g.has_edge(0, 1));
        assert!(is_agrd(&p));
    }

    #[test]
    fn reachability_follows_dependency_chains() {
        let p = parse_program("a(X) -> b(X). b(X) -> c(X). c(X) -> d(X). e(X) -> f(X).").unwrap();
        let g = RuleDependencyGraph::build(&p);
        assert_eq!(g.reachable_from(0), BTreeSet::from([0, 1, 2]));
        assert_eq!(g.reachable_from(3), BTreeSet::from([3]));
    }

    #[test]
    fn example1_grd_is_acyclic() {
        // hasFather atoms trigger the sameAs and abnormality rules, but no
        // rule produces person atoms and the negated sameAs occurrence does
        // not count, so the GRD has no cycle.
        let p = parse_program(
            "person(X) -> hasFather(X, Y).\
             hasFather(X, Y) -> sameAs(Y, Y).\
             hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).",
        )
        .unwrap();
        let g = RuleDependencyGraph::build(&p);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(!g.has_cycle());
    }
}
