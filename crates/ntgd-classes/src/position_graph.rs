//! The position (dependency) graph of Fagin et al., as in Definition 3 of the
//! paper.
//!
//! Vertices are positions `p[i]`; for every rule `σ`, every universally
//! quantified variable `X` occurring in the head and every position `π` of `X`
//! in the body:
//!
//! * a **regular** edge `(π, π')` for every position `π'` of `X` in the head;
//! * a **special** edge `(π, π'')` for every position `π''` of an
//!   existentially quantified variable in the head.

use std::collections::{BTreeMap, BTreeSet};

use ntgd_core::{Ntgd, Position, Program, Term};

/// The kind of a position-graph edge.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EdgeKind {
    /// A term may be copied from the source to the target position.
    Regular,
    /// Propagating a term into the source position creates a fresh null in
    /// the target position.
    Special,
}

/// The position graph `PoG(Σ)` of a program.
#[derive(Clone, Debug, Default)]
pub struct PositionGraph {
    vertices: BTreeSet<Position>,
    edges: BTreeSet<(Position, Position, EdgeKind)>,
}

impl PositionGraph {
    /// Builds the position graph of the *given rules as they are* (callers
    /// are responsible for passing `Σ⁺` when required).
    pub fn build(program: &Program) -> PositionGraph {
        let mut graph = PositionGraph::default();
        if let Ok(schema) = program.schema() {
            graph.vertices.extend(schema.positions());
        }
        for (_, rule) in program.iter() {
            graph.add_rule(rule);
        }
        graph
    }

    fn add_rule(&mut self, rule: &Ntgd) {
        let universal = rule.universal_variables();
        let existential = rule.existential_variables();
        // Positions of each universal variable in the positive body.
        let mut body_positions: BTreeMap<ntgd_core::Symbol, Vec<Position>> = BTreeMap::new();
        for atom in rule.body_positive() {
            for (i, term) in atom.args().iter().enumerate() {
                if let Term::Var(v) = term {
                    if universal.contains(v) {
                        body_positions
                            .entry(*v)
                            .or_default()
                            .push(Position::new(atom.predicate(), i + 1));
                    }
                }
            }
        }
        // Head positions of universal and existential variables.
        for atom in rule.head() {
            for (i, term) in atom.args().iter().enumerate() {
                let Term::Var(v) = term else { continue };
                let head_pos = Position::new(atom.predicate(), i + 1);
                if universal.contains(v) {
                    // Regular edges from every body position of v.
                    for src in body_positions.get(v).cloned().unwrap_or_default() {
                        self.edges.insert((src, head_pos, EdgeKind::Regular));
                    }
                } else if existential.contains(v) {
                    // Special edges from every body position of every
                    // universal variable that occurs in the head.
                    for (uvar, srcs) in &body_positions {
                        if rule.head_variables().contains(uvar) {
                            for src in srcs {
                                self.edges.insert((*src, head_pos, EdgeKind::Special));
                            }
                        }
                    }
                }
            }
        }
    }

    /// The vertices (positions) of the graph.
    pub fn vertices(&self) -> impl Iterator<Item = &Position> + '_ {
        self.vertices.iter()
    }

    /// The edges of the graph.
    pub fn edges(&self) -> impl Iterator<Item = &(Position, Position, EdgeKind)> + '_ {
        self.edges.iter()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of special edges.
    pub fn special_edge_count(&self) -> usize {
        self.edges
            .iter()
            .filter(|(_, _, k)| *k == EdgeKind::Special)
            .count()
    }

    /// Returns `true` if the graph has an edge between the two positions.
    pub fn has_edge(&self, from: Position, to: Position, kind: EdgeKind) -> bool {
        self.edges.contains(&(from, to, kind))
    }

    /// Successors of a position (any edge kind).
    pub fn successors(&self, from: Position) -> Vec<(Position, EdgeKind)> {
        self.edges
            .iter()
            .filter(|(f, _, _)| *f == from)
            .map(|(_, t, k)| (*t, *k))
            .collect()
    }

    /// Computes the strongly connected components of the graph (Tarjan).
    /// Returns, for every position, the index of its component.
    pub fn strongly_connected_components(&self) -> BTreeMap<Position, usize> {
        // Iterative Tarjan to avoid recursion limits on large schemas.
        let vertices: Vec<Position> = self.vertices.iter().copied().collect();
        let index_of: BTreeMap<Position, usize> =
            vertices.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); vertices.len()];
        for (f, t, _) in &self.edges {
            if let (Some(&fi), Some(&ti)) = (index_of.get(f), index_of.get(t)) {
                adj[fi].push(ti);
            }
        }
        let n = vertices.len();
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<usize> = vec![usize::MAX; n];
        let mut component_count = 0usize;

        #[derive(Clone)]
        struct Frame {
            v: usize,
            child: usize,
        }

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut call_stack = vec![Frame { v: start, child: 0 }];
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(frame) = call_stack.last().cloned() {
                let v = frame.v;
                if frame.child < adj[v].len() {
                    let w = adj[v][frame.child];
                    call_stack.last_mut().expect("frame exists").child += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push(Frame { v: w, child: 0 });
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(parent) = call_stack.last() {
                        lowlink[parent.v] = lowlink[parent.v].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("stack not empty");
                            on_stack[w] = false;
                            components[w] = component_count;
                            if w == v {
                                break;
                            }
                        }
                        component_count += 1;
                    }
                }
            }
        }
        vertices
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, components[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::Symbol;
    use ntgd_parser::parse_program;

    fn pos_of(p: &str, i: usize) -> Position {
        Position::new(Symbol::intern(p), i)
    }

    #[test]
    fn regular_and_special_edges_follow_definition_3() {
        // person(X) -> hasFather(X, Y):
        //   regular  person[1] -> hasFather[1]
        //   special  person[1] -> hasFather[2]
        let p = parse_program("person(X) -> hasFather(X, Y).").unwrap();
        let g = PositionGraph::build(&p);
        assert!(g.has_edge(
            pos_of("person", 1),
            pos_of("hasFather", 1),
            EdgeKind::Regular
        ));
        assert!(g.has_edge(
            pos_of("person", 1),
            pos_of("hasFather", 2),
            EdgeKind::Special
        ));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.special_edge_count(), 1);
    }

    #[test]
    fn variables_not_propagated_to_head_generate_no_special_edges() {
        // t(X, Y, Z) -> s(Y, W): only Y reaches the head, so special edges
        // originate from t[2] only.
        let p = parse_program("t(X, Y, Z) -> s(Y, W).").unwrap();
        let g = PositionGraph::build(&p);
        assert!(g.has_edge(pos_of("t", 2), pos_of("s", 1), EdgeKind::Regular));
        assert!(g.has_edge(pos_of("t", 2), pos_of("s", 2), EdgeKind::Special));
        assert!(!g.has_edge(pos_of("t", 1), pos_of("s", 2), EdgeKind::Special));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn datalog_rules_have_only_regular_edges() {
        let p = parse_program("e(X, Y) -> r(Y, X).").unwrap();
        let g = PositionGraph::build(&p);
        assert_eq!(g.special_edge_count(), 0);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn vertices_cover_the_whole_schema() {
        let p = parse_program("p(X) -> q(X, Y).").unwrap();
        let g = PositionGraph::build(&p);
        assert_eq!(g.vertices().count(), 3);
    }

    #[test]
    fn scc_identifies_cycles() {
        // p[1] -> q[1] -> p[1] forms a cycle, r[1] is separate.
        let p = parse_program("p(X) -> q(X). q(X) -> p(X). p(X) -> r(X).").unwrap();
        let g = PositionGraph::build(&p);
        let scc = g.strongly_connected_components();
        assert_eq!(scc[&pos_of("p", 1)], scc[&pos_of("q", 1)]);
        assert_ne!(scc[&pos_of("p", 1)], scc[&pos_of("r", 1)]);
    }

    #[test]
    fn multiple_body_occurrences_produce_edges_from_each_position() {
        let p = parse_program("e(X, X) -> f(X, Y).").unwrap();
        let g = PositionGraph::build(&p);
        assert!(g.has_edge(pos_of("e", 1), pos_of("f", 1), EdgeKind::Regular));
        assert!(g.has_edge(pos_of("e", 2), pos_of("f", 1), EdgeKind::Regular));
        assert!(g.has_edge(pos_of("e", 1), pos_of("f", 2), EdgeKind::Special));
        assert!(g.has_edge(pos_of("e", 2), pos_of("f", 2), EdgeKind::Special));
    }
}
