//! # ntgd-classes
//!
//! Syntactic class analyzers for the three decidability paradigms studied in
//! the paper (Section 4):
//!
//! * **weak-acyclicity** ([`weak_acyclicity`]) via the position graph of
//!   Definition 3 — no cycle through a special edge;
//! * **stickiness** ([`stickiness`]) via the inductive variable-marking
//!   procedure illustrated in Figure 1;
//! * **guardedness** ([`guardedness`]) — some positive body atom contains all
//!   body variables.
//!
//! Each analyzer works on the appropriate transformation of a normal
//! (disjunctive) program: weak-acyclicity looks at `Σ⁺` (resp. `Σ⁺,∧` for
//! NDTGDs), stickiness at the program with negated atoms turned positive, and
//! guardedness at the literal bodies.
//!
//! Beyond the paper's three paradigms, the crate also implements the wider
//! landscape that the related work ([2, 4, 7] in the paper's bibliography)
//! situates them in:
//!
//! * **acyclicity notions** — joint acyclicity ([`joint_acyclicity`]),
//!   model-faithful acyclicity via the critical-instance Skolem chase
//!   ([`mfa`]), and acyclicity of the graph of rule dependencies
//!   ([`rule_dependencies`]);
//! * **guardedness fragments** — linear, frontier-1, (weakly)
//!   frontier-guarded and weakly guarded rules ([`fragments`]), built on the
//!   affected-position analysis of [`affected`];
//! * **triangular guardedness** ([`triangular`]) — every pair of frontier
//!   variables co-occurs in some positive body atom (Asuncion & Zhang);
//! * **stratification** of the negation ([`stratification`]);
//! * a one-stop [`classify`] function returning the full [`ClassReport`]
//!   ([`landscape`]), with a coarse [`ClassVerdict`] (terminating /
//!   decidable / out-of-fragment) that services can act on.

pub mod affected;
pub mod fragments;
pub mod guardedness;
pub mod joint_acyclicity;
pub mod landscape;
pub mod mfa;
pub mod position_graph;
pub mod rule_dependencies;
pub mod stickiness;
pub mod stratification;
pub mod triangular;
pub mod weak_acyclicity;

pub use affected::{affected_positions, AffectedPositions};
pub use fragments::{
    is_atomic_head, is_frontier_guarded, is_frontier_one, is_full, is_linear,
    is_weakly_frontier_guarded, is_weakly_guarded,
};
pub use guardedness::{is_guarded, is_guarded_rule};
pub use joint_acyclicity::{is_jointly_acyclic, ExistentialVariable, JointAcyclicityAnalysis};
pub use landscape::{classify, ClassReport, ClassVerdict};
pub use mfa::{is_model_faithful_acyclic, mfa_report, FunctionSymbol, MfaConfig, MfaReport};
pub use position_graph::{EdgeKind, PositionGraph};
pub use rule_dependencies::{is_agrd, rule_depends_on, RuleDependencyGraph};
pub use stickiness::{is_sticky, marked_variables, MarkedVariable};
pub use stratification::{is_stratified, DependencyGraph, DependencyKind};
pub use triangular::{is_triangularly_guarded, is_triangularly_guarded_rule};
pub use weak_acyclicity::{is_weakly_acyclic, is_weakly_acyclic_disjunctive, WeakAcyclicityReport};
