//! Triangular guardedness (Asuncion & Zhang, see PAPERS.md).
//!
//! Frontier-guardedness asks for a *single* positive body atom covering the
//! whole frontier.  Triangular guardedness relaxes the single-guard
//! requirement to a pairwise one: every pair of distinct frontier variables
//! must co-occur in *some* positive body atom (each pair may pick a different
//! atom).  The frontier is then "triangulated" by body atoms rather than
//! guarded by one, which still bounds how frontier bindings can be assembled
//! during the chase and keeps reasoning decidable for the fragment.
//!
//! Every frontier-guarded rule is trivially triangularly guarded (the one
//! guard atom witnesses every pair), so the class sits strictly above
//! frontier-guardedness in the landscape; the transitivity rule
//! `e(X, Y), e(Y, Z) -> e(X, Z).` separates the two from full generality —
//! its frontier `{X, Z}` never co-occurs in a body atom, so it is in neither.

use ntgd_core::{Ntgd, Program, Symbol, Term};

/// Returns `true` if the two variables occur together in some positive body
/// atom of the rule.
fn some_atom_covers_pair(rule: &Ntgd, a: Symbol, b: Symbol) -> bool {
    rule.body_positive().iter().any(|atom| {
        atom.args().contains(&Term::Var(a)) && atom.args().contains(&Term::Var(b))
    })
}

/// Returns `true` if every pair of distinct frontier variables of the rule
/// co-occurs in some positive body atom.  Rules with at most one frontier
/// variable are vacuously triangularly guarded.
pub fn is_triangularly_guarded_rule(rule: &Ntgd) -> bool {
    let frontier: Vec<Symbol> = rule.frontier_variables().into_iter().collect();
    frontier.iter().enumerate().all(|(i, &a)| {
        frontier[i + 1..]
            .iter()
            .all(|&b| some_atom_covers_pair(rule, a, b))
    })
}

/// Returns `true` if every rule of the program is triangularly guarded.
pub fn is_triangularly_guarded(program: &Program) -> bool {
    program.rules().iter().all(is_triangularly_guarded_rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::is_frontier_guarded;
    use ntgd_parser::{parse_program, parse_rule};

    #[test]
    fn pairwise_covered_frontier_is_triangularly_guarded() {
        // Frontier {X, Y, Z}: no single atom covers all three, but every pair
        // has a witness atom — the separating member of the class.
        let rule = parse_rule("r(X, Y), s(Y, Z), t(X, Z) -> u(X, Y, Z).").unwrap();
        assert!(is_triangularly_guarded_rule(&rule));
        let program = parse_program("r(X, Y), s(Y, Z), t(X, Z) -> u(X, Y, Z).").unwrap();
        assert!(is_triangularly_guarded(&program));
        assert!(!is_frontier_guarded(&program));
    }

    #[test]
    fn transitivity_is_not_triangularly_guarded() {
        // The frontier {X, Z} never co-occurs in a body atom.
        let rule = parse_rule("e(X, Y), e(Y, Z) -> e(X, Z).").unwrap();
        assert!(!is_triangularly_guarded_rule(&rule));
        assert!(!is_triangularly_guarded(
            &parse_program("e(X, Y), e(Y, Z) -> e(X, Z).").unwrap()
        ));
    }

    #[test]
    fn frontier_guarded_rules_are_triangularly_guarded() {
        for text in [
            "person(X) -> hasFather(X, Y).",
            "r(X, Y), s(Y, Z) -> t(X, W).",
            "e(X, Y) -> n(X).",
            "hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).",
        ] {
            let rule = parse_rule(text).unwrap();
            assert!(
                is_triangularly_guarded_rule(&rule),
                "frontier-guarded rule must be triangularly guarded: {text}"
            );
        }
    }

    #[test]
    fn small_frontiers_are_vacuously_triangular() {
        // Zero or one frontier variable: no pair to cover.
        assert!(is_triangularly_guarded_rule(
            &parse_rule("p(X), q(Y) -> r(W).").unwrap()
        ));
        assert!(is_triangularly_guarded_rule(
            &parse_rule("t(X, Y, Z) -> s(X, W).").unwrap()
        ));
    }

    #[test]
    fn empty_program_is_triangularly_guarded() {
        assert!(is_triangularly_guarded(&Program::new()));
    }
}
