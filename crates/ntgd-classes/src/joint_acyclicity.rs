//! Joint acyclicity (Krötzsch & Rudolph; surveyed by Baget et al. \[2\]).
//!
//! Joint acyclicity refines weak-acyclicity by tracking, *per existentially
//! quantified variable*, the set of positions its invented nulls may reach,
//! instead of merging all value creation that happens at a position.
//!
//! For an existential variable `y` of rule `ρ_y`, the **movement set**
//! `Mv(y)` is the smallest set of positions such that
//!
//! * every head position of `y` in `ρ_y` belongs to `Mv(y)`, and
//! * for every rule `ρ` and every frontier variable `x` of `ρ`: if every
//!   positive-body position of `x` belongs to `Mv(y)`, then every head
//!   position of `x` belongs to `Mv(y)`.
//!
//! The **existential dependency graph** has the existential variables as
//! vertices and an edge `y → y'` whenever the rule `ρ_{y'}` containing `y'`
//! has a frontier variable `x` all of whose positive-body positions lie in
//! `Mv(y)` — that is, a null invented for `y` may end up feeding the join
//! that makes `ρ_{y'}` fire and invent a null for `y'`.  A program is
//! *jointly acyclic* if this graph is acyclic.  Every weakly-acyclic program
//! is jointly acyclic, and joint acyclicity still guarantees termination of
//! the (Skolem) chase.
//!
//! As with the other class analyses, NTGDs are analysed via `Σ⁺`.

use std::collections::{BTreeMap, BTreeSet};

use ntgd_core::{Ntgd, Position, Program, Symbol, Term};

/// Identifies an existentially quantified variable: which rule, and which
/// variable symbol.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct ExistentialVariable {
    /// Index of the rule in the program.
    pub rule_index: usize,
    /// The variable symbol.
    pub variable: Symbol,
}

/// The joint-acyclicity analysis: movement sets and the existential
/// dependency graph.
#[derive(Clone, Debug, Default)]
pub struct JointAcyclicityAnalysis {
    movement: BTreeMap<ExistentialVariable, BTreeSet<Position>>,
    edges: BTreeSet<(ExistentialVariable, ExistentialVariable)>,
}

fn body_positions_of(rule: &Ntgd, variable: Symbol) -> BTreeSet<Position> {
    let mut out = BTreeSet::new();
    for atom in rule.body_positive() {
        for (i, term) in atom.args().iter().enumerate() {
            if *term == Term::Var(variable) {
                out.insert(Position::new(atom.predicate(), i + 1));
            }
        }
    }
    out
}

fn head_positions_of(rule: &Ntgd, variable: Symbol) -> BTreeSet<Position> {
    let mut out = BTreeSet::new();
    for atom in rule.head() {
        for (i, term) in atom.args().iter().enumerate() {
            if *term == Term::Var(variable) {
                out.insert(Position::new(atom.predicate(), i + 1));
            }
        }
    }
    out
}

impl JointAcyclicityAnalysis {
    /// Runs the analysis on the positive part of the program.
    pub fn analyse(program: &Program) -> JointAcyclicityAnalysis {
        let rules: Vec<Ntgd> = program
            .rules()
            .iter()
            .map(ntgd_core::Ntgd::positive_part)
            .collect();

        // Frontier variables of every rule, with their body/head positions.
        struct FrontierInfo {
            rule_index: usize,
            body_positions: BTreeSet<Position>,
            head_positions: BTreeSet<Position>,
        }
        let mut frontier_infos: Vec<FrontierInfo> = Vec::new();
        for (rule_index, rule) in rules.iter().enumerate() {
            for variable in rule.frontier_variables() {
                frontier_infos.push(FrontierInfo {
                    rule_index,
                    body_positions: body_positions_of(rule, variable),
                    head_positions: head_positions_of(rule, variable),
                });
            }
        }

        // Movement set of every existential variable (least fixpoint).
        let mut movement: BTreeMap<ExistentialVariable, BTreeSet<Position>> = BTreeMap::new();
        for (rule_index, rule) in rules.iter().enumerate() {
            for variable in rule.existential_variables() {
                let key = ExistentialVariable {
                    rule_index,
                    variable,
                };
                movement.insert(key, head_positions_of(rule, variable));
            }
        }
        for positions in movement.values_mut() {
            loop {
                let mut changed = false;
                for info in &frontier_infos {
                    if info.body_positions.is_empty()
                        || !info.body_positions.iter().all(|p| positions.contains(p))
                    {
                        continue;
                    }
                    for p in &info.head_positions {
                        if positions.insert(*p) {
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        // Existential dependency graph.
        let mut edges: BTreeSet<(ExistentialVariable, ExistentialVariable)> = BTreeSet::new();
        for (&source, positions) in &movement {
            for info in &frontier_infos {
                if info.body_positions.is_empty()
                    || !info.body_positions.iter().all(|p| positions.contains(p))
                {
                    continue;
                }
                // A null for `source` can feed this frontier variable, so it
                // contributes to every existential variable of that rule.
                for target_variable in rules[info.rule_index].existential_variables() {
                    edges.insert((
                        source,
                        ExistentialVariable {
                            rule_index: info.rule_index,
                            variable: target_variable,
                        },
                    ));
                }
            }
        }

        JointAcyclicityAnalysis { movement, edges }
    }

    /// The movement set of an existential variable, if the variable exists.
    pub fn movement_set(&self, variable: ExistentialVariable) -> Option<&BTreeSet<Position>> {
        self.movement.get(&variable)
    }

    /// The existential variables of the program.
    pub fn existential_variables(&self) -> impl Iterator<Item = &ExistentialVariable> + '_ {
        self.movement.keys()
    }

    /// The edges of the existential dependency graph.
    pub fn edges(&self) -> impl Iterator<Item = &(ExistentialVariable, ExistentialVariable)> + '_ {
        self.edges.iter()
    }

    /// Returns `true` if the existential dependency graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        // Depth-first search for a back edge.
        let vertices: Vec<ExistentialVariable> = self.movement.keys().copied().collect();
        let index_of: BTreeMap<ExistentialVariable, usize> =
            vertices.iter().enumerate().map(|(i, v)| (*v, i)).collect();
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); vertices.len()];
        for (from, to) in &self.edges {
            adjacency[index_of[from]].push(index_of[to]);
        }
        // 0 = unvisited, 1 = on stack, 2 = done.
        let mut state = vec![0u8; vertices.len()];
        for start in 0..vertices.len() {
            if state[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            state[start] = 1;
            while let Some(&(v, child)) = stack.last() {
                if child < adjacency[v].len() {
                    stack.last_mut().expect("frame").1 += 1;
                    let w = adjacency[v][child];
                    match state[w] {
                        0 => {
                            state[w] = 1;
                            stack.push((w, 0));
                        }
                        1 => return false,
                        _ => {}
                    }
                } else {
                    state[v] = 2;
                    stack.pop();
                }
            }
        }
        true
    }
}

/// Returns `true` if the program is jointly acyclic.
pub fn is_jointly_acyclic(program: &Program) -> bool {
    JointAcyclicityAnalysis::analyse(program).is_acyclic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weak_acyclicity::is_weakly_acyclic;
    use ntgd_parser::parse_program;

    #[test]
    fn existential_free_programs_are_jointly_acyclic() {
        let p = parse_program("e(X, Y), e(Y, Z) -> e(X, Z). p(X), not q(X) -> r(X).").unwrap();
        assert!(is_jointly_acyclic(&p));
    }

    #[test]
    fn weakly_acyclic_examples_are_jointly_acyclic() {
        for text in [
            "person(X) -> hasFather(X, Y).\
             hasFather(X, Y) -> sameAs(Y, Y).\
             hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).",
            "p(X) -> q(X, Y). q(X, Y) -> r(Y).",
            "node(X) -> edge(X, Y). edge(X, Y), edge(Y, Z) -> edge(X, Z).",
            "emp(X) -> worksIn(X, D). worksIn(X, D) -> unit(D).",
        ] {
            let p = parse_program(text).unwrap();
            assert!(is_weakly_acyclic(&p), "expected WA: {text}");
            assert!(is_jointly_acyclic(&p), "expected JA: {text}");
        }
    }

    #[test]
    fn the_person_chain_is_not_jointly_acyclic() {
        let p = parse_program("person(X) -> parent(X, Y), person(Y).").unwrap();
        assert!(!is_weakly_acyclic(&p));
        assert!(!is_jointly_acyclic(&p));
    }

    #[test]
    fn feeding_a_generated_null_back_into_the_generator_is_cyclic() {
        let p = parse_program("p(X) -> q(X, Y). q(X, Y) -> p(Y).").unwrap();
        assert!(!is_weakly_acyclic(&p));
        assert!(!is_jointly_acyclic(&p));
    }

    #[test]
    fn joint_acyclicity_is_strictly_more_general_than_weak_acyclicity() {
        // Nulls are created in q[2] and copied into r[2]/back into q[2] only
        // for *different* existential variables that never feed each other's
        // generating joins: the WA position graph sees a special-edge cycle,
        // but the per-variable movement sets stay acyclic.
        //
        //   σ1: p(X) → ∃Y q(X, Y)
        //   σ2: q(X, Y), s(X) → ∃Z q(Z, X)
        //
        // WA: q[2] → q[2] via σ2?  σ2's frontier is {X}; X occurs at q[1] and
        // s[1] in the body and at q[2] in the head, so there is a regular
        // edge q[1] → q[2] and a special edge q[1] → q[1] (and s[1] → …).
        // Together with σ1's special edge p[1] → q[2] and regular p[1] → q[1]
        // this yields the cycle q[1] → q[1] through a special edge: not WA.
        //
        // JA: Mv(Y of σ1) = {q[2]} (no frontier variable has all its body
        // positions inside {q[2]}, because σ2's X also occurs at s[1]).
        // Mv(Z of σ2) = {q[1]}.  σ2's X needs both q[1] *and* s[1], and σ1's
        // X needs p[1]; no movement set covers either, so the existential
        // dependency graph has no edges at all: jointly acyclic.
        let p = parse_program("p(X) -> q(X, Y). q(X, Y), s(X) -> q(Z, X).").unwrap();
        assert!(!is_weakly_acyclic(&p));
        assert!(is_jointly_acyclic(&p));
    }

    #[test]
    fn movement_sets_follow_propagation() {
        let p = parse_program("p(X) -> q(X, Y). q(X, Y) -> r(Y).").unwrap();
        let analysis = JointAcyclicityAnalysis::analyse(&p);
        let y = *analysis
            .existential_variables()
            .next()
            .expect("one existential variable");
        let mv = analysis.movement_set(y).unwrap();
        assert!(mv.contains(&Position::new(Symbol::intern("q"), 2)));
        assert!(mv.contains(&Position::new(Symbol::intern("r"), 1)));
        assert!(!mv.contains(&Position::new(Symbol::intern("q"), 1)));
    }

    #[test]
    fn edges_point_at_every_existential_of_the_dependent_rule() {
        // The null for Y reaches q[2]; rule 2 fires on q[2] alone and creates
        // two existential variables, both of which therefore depend on Y.
        let p = parse_program("p(X) -> q(X, Y). q(X, Y) -> t(Y, V, W).").unwrap();
        let analysis = JointAcyclicityAnalysis::analyse(&p);
        assert!(analysis.is_acyclic());
        assert_eq!(analysis.edges().count(), 2);
    }
}
