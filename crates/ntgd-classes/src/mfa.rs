//! Model-faithful acyclicity (MFA), the semantic acyclicity notion surveyed
//! by Baget et al. \[2\].
//!
//! MFA goes beyond the purely syntactic notions (weak and joint acyclicity,
//! aGRD) by actually *running* the Skolem chase on the **critical instance**
//! — the database containing `p(⋆, …, ⋆)` for every predicate `p` of the
//! program, where `⋆` is a single fresh constant.  The program is MFA if this
//! chase never produces a *cyclic* term, i.e. a Skolem term in which the same
//! function symbol (the same existential variable of the same rule) occurs
//! nested inside itself.  If no cyclic term appears the chase is guaranteed
//! to terminate, because terms of nesting depth beyond the number of function
//! symbols necessarily repeat one; MFA therefore guarantees termination of
//! the Skolem chase on **every** database.
//!
//! The core `Term` type of this workspace has no function symbols, so the
//! checker keeps its own little term arena: every invented value records the
//! function symbol (rule index, existential variable) that created it and the
//! values it was created from, which is exactly the information needed to
//! detect nesting.  As everywhere else in the crate, NTGDs are analysed via
//! their positive part `Σ⁺`.

use std::collections::{BTreeMap, BTreeSet};

use ntgd_core::{Ntgd, Program, Symbol, Term};

/// A function symbol of the Skolemisation: one per existential variable of
/// each rule.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct FunctionSymbol {
    /// Index of the rule in the program.
    pub rule_index: usize,
    /// The existential variable the symbol replaces.
    pub variable: Symbol,
}

/// Value identifier in the checker's term arena.
type ValueId = usize;

/// A value of the critical-instance chase: either the critical constant `⋆`,
/// a database constant mentioned in the rules, or a Skolem term.
#[derive(Clone, Debug)]
enum Value {
    /// The critical constant, or a constant occurring in the program.
    Constant,
    /// A Skolem term `f(args…)`.
    Functional {
        /// The function symbols occurring in this term or (transitively) in
        /// its arguments — the information needed for cyclicity detection.
        symbols_inside: BTreeSet<FunctionSymbol>,
    },
}

/// Internal ground atom over arena values.
type ValueAtom = (Symbol, Vec<ValueId>);

/// The outcome of the MFA check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MfaReport {
    /// `true` if the program is model-faithfully acyclic.
    pub acyclic: bool,
    /// The function symbol that was nested inside itself, if the check
    /// failed.
    pub cyclic_symbol: Option<FunctionSymbol>,
    /// Number of atoms derived by the critical-instance chase (including the
    /// critical instance itself).
    pub atoms_derived: usize,
    /// `true` if the chase was cut off by the step limit before reaching a
    /// fixpoint or a cyclic term (the result is then inconclusive and
    /// reported as non-acyclic).
    pub truncated: bool,
}

/// Configuration of the MFA check.
#[derive(Clone, Copy, Debug)]
pub struct MfaConfig {
    /// Maximum number of chase rounds before giving up (safety valve; the
    /// check itself always terminates, but the intermediate instance can be
    /// large for wide schemas).
    pub max_rounds: usize,
    /// Maximum number of derived atoms before giving up.
    pub max_atoms: usize,
}

impl Default for MfaConfig {
    fn default() -> Self {
        MfaConfig {
            max_rounds: 64,
            max_atoms: 200_000,
        }
    }
}

struct CriticalChase {
    values: Vec<Value>,
    atoms: BTreeSet<ValueAtom>,
    /// Memoisation of Skolem terms: (function symbol, frontier binding) →
    /// value, so repeated triggers reuse the same term (Skolem semantics).
    skolem_cache: BTreeMap<(FunctionSymbol, Vec<ValueId>), ValueId>,
    constant_ids: BTreeMap<Symbol, ValueId>,
}

impl CriticalChase {
    fn new() -> CriticalChase {
        CriticalChase {
            values: Vec::new(),
            atoms: BTreeSet::new(),
            skolem_cache: BTreeMap::new(),
            constant_ids: BTreeMap::new(),
        }
    }

    fn constant(&mut self, symbol: Symbol) -> ValueId {
        if let Some(id) = self.constant_ids.get(&symbol) {
            return *id;
        }
        let id = self.values.len();
        self.values.push(Value::Constant);
        self.constant_ids.insert(symbol, id);
        id
    }

    fn symbols_inside(&self, id: ValueId) -> BTreeSet<FunctionSymbol> {
        match &self.values[id] {
            Value::Constant => BTreeSet::new(),
            Value::Functional { symbols_inside } => symbols_inside.clone(),
        }
    }

    /// Returns the Skolem term for the given function symbol and frontier
    /// binding, together with a flag indicating whether the term is cyclic.
    fn skolem(&mut self, symbol: FunctionSymbol, frontier: Vec<ValueId>) -> (ValueId, bool) {
        if let Some(id) = self.skolem_cache.get(&(symbol, frontier.clone())) {
            return (*id, false);
        }
        let mut inside: BTreeSet<FunctionSymbol> = BTreeSet::new();
        for arg in &frontier {
            inside.extend(self.symbols_inside(*arg));
        }
        let cyclic = inside.contains(&symbol);
        inside.insert(symbol);
        let id = self.values.len();
        self.values.push(Value::Functional {
            symbols_inside: inside,
        });
        self.skolem_cache.insert((symbol, frontier), id);
        (id, cyclic)
    }

    /// All homomorphisms from the rule's positive body into the current atom
    /// set, as bindings of the rule's variables to value ids.
    fn body_matches(&self, rule: &Ntgd) -> Vec<BTreeMap<Symbol, ValueId>> {
        let mut results = Vec::new();
        let body: Vec<&ntgd_core::Atom> = rule.body_positive();
        let mut binding: BTreeMap<Symbol, ValueId> = BTreeMap::new();
        self.match_from(&body, 0, &mut binding, &mut results);
        results
    }

    fn match_from(
        &self,
        body: &[&ntgd_core::Atom],
        index: usize,
        binding: &mut BTreeMap<Symbol, ValueId>,
        results: &mut Vec<BTreeMap<Symbol, ValueId>>,
    ) {
        if index == body.len() {
            results.push(binding.clone());
            return;
        }
        let atom = body[index];
        for (pred, args) in &self.atoms {
            if *pred != atom.predicate() || args.len() != atom.arity() {
                continue;
            }
            let mut added: Vec<Symbol> = Vec::new();
            let mut ok = true;
            for (term, value) in atom.args().iter().zip(args) {
                match term {
                    Term::Const(c) => {
                        if self.constant_ids.get(c) != Some(value) {
                            ok = false;
                            break;
                        }
                    }
                    Term::Null(_) => {
                        ok = false;
                        break;
                    }
                    Term::Var(v) => match binding.get(v) {
                        Some(bound) if bound != value => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            binding.insert(*v, *value);
                            added.push(*v);
                        }
                    },
                }
            }
            if ok {
                self.match_from(body, index + 1, binding, results);
            }
            for v in added {
                binding.remove(&v);
            }
        }
    }
}

/// Runs the MFA check with the given configuration.
pub fn mfa_report_with(program: &Program, config: &MfaConfig) -> MfaReport {
    let rules: Vec<Ntgd> = program
        .rules()
        .iter()
        .map(ntgd_core::Ntgd::positive_part)
        .collect();
    let mut chase = CriticalChase::new();
    let star = chase.constant(Symbol::intern("⋆"));

    // Critical instance: p(⋆, …, ⋆) for every predicate, plus the constants
    // mentioned in the rules (each in every position, to stay sound for
    // programs with constants).
    let schema = match program.schema() {
        Ok(schema) => schema,
        Err(_) => {
            return MfaReport {
                acyclic: true,
                cyclic_symbol: None,
                atoms_derived: 0,
                truncated: false,
            }
        }
    };
    let mut seed_values = vec![star];
    for c in program.constants() {
        if let Term::Const(symbol) = c {
            seed_values.push(chase.constant(symbol));
        }
    }
    for (predicate, arity) in schema.predicates() {
        for value in &seed_values {
            chase.atoms.insert((predicate, vec![*value; arity]));
        }
    }

    let mut truncated = false;
    'chase: for _round in 0..config.max_rounds {
        let mut new_atoms: Vec<ValueAtom> = Vec::new();
        for (rule_index, rule) in rules.iter().enumerate() {
            let existential = rule.existential_variables();
            let frontier: Vec<Symbol> = rule.frontier_variables().into_iter().collect();
            for binding in chase.body_matches(rule) {
                // Skolem terms for this trigger's existential variables.
                let frontier_values: Vec<ValueId> = frontier
                    .iter()
                    .map(|v| *binding.get(v).expect("safe rule: frontier bound"))
                    .collect();
                let mut extended = binding.clone();
                for variable in &existential {
                    let symbol = FunctionSymbol {
                        rule_index,
                        variable: *variable,
                    };
                    let (value, cyclic) = chase.skolem(symbol, frontier_values.clone());
                    if cyclic {
                        return MfaReport {
                            acyclic: false,
                            cyclic_symbol: Some(symbol),
                            atoms_derived: chase.atoms.len(),
                            truncated: false,
                        };
                    }
                    extended.insert(*variable, value);
                }
                for atom in rule.head() {
                    let args: Vec<ValueId> = atom
                        .args()
                        .iter()
                        .map(|t| match t {
                            Term::Const(c) => chase.constant(*c),
                            Term::Var(v) => *extended.get(v).expect("head variable bound"),
                            Term::Null(_) => unreachable!("rules contain no nulls"),
                        })
                        .collect();
                    let value_atom = (atom.predicate(), args);
                    if !chase.atoms.contains(&value_atom) {
                        new_atoms.push(value_atom);
                    }
                }
            }
        }
        if new_atoms.is_empty() {
            break;
        }
        for atom in new_atoms {
            chase.atoms.insert(atom);
        }
        if chase.atoms.len() > config.max_atoms {
            truncated = true;
            break 'chase;
        }
    }

    MfaReport {
        acyclic: !truncated,
        cyclic_symbol: None,
        atoms_derived: chase.atoms.len(),
        truncated,
    }
}

/// Runs the MFA check with the default configuration.
pub fn mfa_report(program: &Program) -> MfaReport {
    mfa_report_with(program, &MfaConfig::default())
}

/// Returns `true` if the program is model-faithfully acyclic.
pub fn is_model_faithful_acyclic(program: &Program) -> bool {
    mfa_report(program).acyclic
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint_acyclicity::is_jointly_acyclic;
    use crate::weak_acyclicity::is_weakly_acyclic;
    use ntgd_parser::parse_program;

    #[test]
    fn existential_free_programs_are_mfa() {
        let p = parse_program("e(X, Y), e(Y, Z) -> e(X, Z). p(X), not q(X) -> r(X).").unwrap();
        let report = mfa_report(&p);
        assert!(report.acyclic);
        assert!(report.cyclic_symbol.is_none());
        assert!(!report.truncated);
    }

    #[test]
    fn weakly_acyclic_programs_are_mfa() {
        for text in [
            "person(X) -> hasFather(X, Y).\
             hasFather(X, Y) -> sameAs(Y, Y).\
             hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).",
            "p(X) -> q(X, Y). q(X, Y) -> r(Y).",
            "emp(X) -> worksIn(X, D). worksIn(X, D) -> unit(D).",
        ] {
            let p = parse_program(text).unwrap();
            assert!(is_weakly_acyclic(&p));
            assert!(is_model_faithful_acyclic(&p), "expected MFA: {text}");
        }
    }

    #[test]
    fn the_person_chain_is_not_mfa() {
        let p = parse_program("person(X) -> parent(X, Y), person(Y).").unwrap();
        let report = mfa_report(&p);
        assert!(!report.acyclic);
        let symbol = report.cyclic_symbol.expect("cyclic witness");
        assert_eq!(symbol.rule_index, 0);
    }

    #[test]
    fn a_non_weakly_acyclic_program_whose_chase_terminates_is_mfa() {
        //   σ1: p(X) → ∃Y q(X, Y)
        //   σ2: q(X, Y), q(Y, X) → p(Y)
        //
        // The position graph has a special-edge cycle (p[1] → q[2] → p[1]),
        // yet the Skolem chase on the critical instance stops: q(⋆, f(⋆)) is
        // derived but the symmetric q(f(⋆), ⋆) never is, so σ2 cannot fire on
        // a functional term.  Both joint acyclicity and MFA classify the
        // program as terminating.
        let p = parse_program("p(X) -> q(X, Y). q(X, Y), q(Y, X) -> p(Y).").unwrap();
        assert!(!is_weakly_acyclic(&p));
        assert!(is_jointly_acyclic(&p));
        assert!(is_model_faithful_acyclic(&p));
    }

    #[test]
    fn mutual_generation_is_caught_by_the_critical_instance() {
        let p = parse_program("p(X) -> q(X, Y). q(X, Y) -> p(Y).").unwrap();
        assert!(!is_model_faithful_acyclic(&p));
    }

    #[test]
    fn constants_in_rules_participate_in_the_critical_instance() {
        // The existential value is only created for the constant a; the
        // recursion cannot restart from it, so the program is MFA even though
        // the critical instance must include a.
        let p = parse_program("p(a) -> q(a, Y). q(X, Y) -> r(X).").unwrap();
        assert!(is_model_faithful_acyclic(&p));
    }

    #[test]
    fn report_counts_derived_atoms() {
        let p = parse_program("p(X) -> q(X, Y). q(X, Y) -> r(Y).").unwrap();
        let report = mfa_report(&p);
        assert!(report.acyclic);
        // Critical instance has p(⋆), q(⋆,⋆), r(⋆); the chase adds q(⋆, f(⋆)),
        // r(f(⋆)) and r(⋆) (already there).
        assert!(report.atoms_derived >= 5);
    }
}
