//! Stratified negation.
//!
//! The paper's related work ([2, 25]) studies acyclicity and *stratification*
//! conditions under which NTGDs admit unique or finitely many stable models.
//! We provide the classical predicate-level notion: build the dependency
//! graph whose vertices are predicates, with a positive edge `p → q` whenever
//! `p` occurs positively in the body of a rule with `q` in its head, and a
//! negative edge when `p` occurs negatively; the program is **stratified** if
//! no cycle goes through a negative edge.  For stratified programs the stable
//! model semantics, the well-founded semantics and the perfect model
//! coincide on existential-free programs, which makes this a useful
//! diagnostic alongside the main three classes.

use std::collections::{BTreeMap, BTreeSet};

use ntgd_core::{Program, Symbol};

/// Edge polarity in the predicate dependency graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum DependencyKind {
    /// The body predicate occurs positively.
    Positive,
    /// The body predicate occurs under default negation.
    Negative,
}

/// The predicate dependency graph of a program.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    edges: BTreeSet<(Symbol, Symbol, DependencyKind)>,
    predicates: BTreeSet<Symbol>,
}

impl DependencyGraph {
    /// Builds the dependency graph of a program.
    pub fn build(program: &Program) -> DependencyGraph {
        let mut graph = DependencyGraph::default();
        for (_, rule) in program.iter() {
            for head in rule.head() {
                graph.predicates.insert(head.predicate());
                for lit in rule.body() {
                    let kind = if lit.is_positive() {
                        DependencyKind::Positive
                    } else {
                        DependencyKind::Negative
                    };
                    graph.predicates.insert(lit.atom().predicate());
                    graph
                        .edges
                        .insert((lit.atom().predicate(), head.predicate(), kind));
                }
            }
        }
        graph
    }

    /// The edges of the graph.
    pub fn edges(&self) -> impl Iterator<Item = &(Symbol, Symbol, DependencyKind)> + '_ {
        self.edges.iter()
    }

    /// Computes, for every predicate, the index of its strongly connected
    /// component (iterative DFS-based Tarjan, shared logic with the position
    /// graph would be overkill for this small structure).
    fn components(&self) -> BTreeMap<Symbol, usize> {
        let vertices: Vec<Symbol> = self.predicates.iter().copied().collect();
        let index_of: BTreeMap<Symbol, usize> =
            vertices.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let n = vertices.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (f, t, _) in &self.edges {
            adj[index_of[f]].push(index_of[t]);
        }
        // Kosaraju: order by finish time, then assign components on the
        // transposed graph.
        let mut visited = vec![false; n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            visited[start] = true;
            while let Some(&(v, child)) = stack.last() {
                if child < adj[v].len() {
                    let w = adj[v][child];
                    stack.last_mut().expect("stack is non-empty").1 += 1;
                    if !visited[w] {
                        visited[w] = true;
                        stack.push((w, 0));
                    }
                } else {
                    order.push(v);
                    stack.pop();
                }
            }
        }
        let mut transposed: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (f, t, _) in &self.edges {
            transposed[index_of[t]].push(index_of[f]);
        }
        let mut component = vec![usize::MAX; n];
        let mut current = 0;
        for &v in order.iter().rev() {
            if component[v] != usize::MAX {
                continue;
            }
            let mut stack = vec![v];
            component[v] = current;
            while let Some(u) = stack.pop() {
                for &w in &transposed[u] {
                    if component[w] == usize::MAX {
                        component[w] = current;
                        stack.push(w);
                    }
                }
            }
            current += 1;
        }
        vertices
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, component[i]))
            .collect()
    }

    /// Returns `true` if no cycle of the graph contains a negative edge.
    pub fn is_stratified(&self) -> bool {
        let components = self.components();
        self.edges
            .iter()
            .all(|(f, t, kind)| *kind == DependencyKind::Positive || components[f] != components[t])
    }

    /// A stratification: a map from predicates to stratum numbers such that
    /// positive dependencies never decrease the stratum and negative
    /// dependencies strictly increase it.  Returns `None` if the program is
    /// not stratified.
    pub fn stratification(&self) -> Option<BTreeMap<Symbol, usize>> {
        if !self.is_stratified() {
            return None;
        }
        // Iterate to a fixpoint; at most |predicates| rounds are needed.
        let mut stratum: BTreeMap<Symbol, usize> =
            self.predicates.iter().map(|&p| (p, 0)).collect();
        for _ in 0..=self.predicates.len() {
            let mut changed = false;
            for (f, t, kind) in &self.edges {
                let required = match kind {
                    DependencyKind::Positive => stratum[f],
                    DependencyKind::Negative => stratum[f] + 1,
                };
                if stratum[t] < required {
                    stratum.insert(*t, required);
                    changed = true;
                }
            }
            if !changed {
                return Some(stratum);
            }
        }
        None
    }
}

/// Returns `true` if the program uses negation in a stratified way.
pub fn is_stratified(program: &Program) -> bool {
    DependencyGraph::build(program).is_stratified()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_parser::parse_program;

    #[test]
    fn positive_programs_are_stratified() {
        let p = parse_program("e(X,Y), e(Y,Z) -> e(X,Z). e(X,Y) -> n(X).").unwrap();
        assert!(is_stratified(&p));
        let strata = DependencyGraph::build(&p).stratification().unwrap();
        assert_eq!(strata[&Symbol::intern("e")], 0);
    }

    #[test]
    fn example1_is_stratified() {
        let p = parse_program(
            "person(X) -> hasFather(X, Y). hasFather(X, Y) -> sameAs(Y, Y). \
             hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).",
        )
        .unwrap();
        assert!(is_stratified(&p));
        let strata = DependencyGraph::build(&p).stratification().unwrap();
        assert!(strata[&Symbol::intern("abnormal")] > strata[&Symbol::intern("sameAs")]);
    }

    #[test]
    fn even_negative_loops_are_not_stratified() {
        let p = parse_program("seed(X), not b -> a. seed(X), not a -> b.").unwrap();
        assert!(!is_stratified(&p));
        assert!(DependencyGraph::build(&p).stratification().is_none());
    }

    #[test]
    fn negation_within_a_positive_cycle_is_not_stratified() {
        let p = parse_program("p(X), not q(X) -> r(X). r(X) -> q(X).").unwrap();
        assert!(!is_stratified(&p));
    }

    #[test]
    fn negation_across_strata_is_fine() {
        let p = parse_program("p(X), not q(X) -> r(X). s(X) -> q(X).").unwrap();
        assert!(is_stratified(&p));
        let strata = DependencyGraph::build(&p).stratification().unwrap();
        assert!(strata[&Symbol::intern("r")] > strata[&Symbol::intern("q")]);
    }

    #[test]
    fn dependency_graph_records_polarities() {
        let p = parse_program("p(X), not q(X) -> r(X).").unwrap();
        let g = DependencyGraph::build(&p);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 2);
        assert!(edges
            .iter()
            .any(|(f, _, k)| f.as_str() == "q" && *k == DependencyKind::Negative));
        assert!(edges
            .iter()
            .any(|(f, _, k)| f.as_str() == "p" && *k == DependencyKind::Positive));
    }
}
