//! Guardedness (paper, Section 4.3).
//!
//! An NTGD is *guarded* if some positive body atom (the guard) contains every
//! variable occurring in the body; a program is guarded if all of its rules
//! are.

use ntgd_core::{Ntgd, Program, Term};

/// Returns `true` if the rule is guarded: some positive body atom contains all
/// body variables.  Rules with an empty (or variable-free) body are trivially
/// guarded.
pub fn is_guarded_rule(rule: &Ntgd) -> bool {
    let body_vars = rule.universal_variables();
    if body_vars.is_empty() {
        return true;
    }
    rule.body_positive().iter().any(|atom| {
        body_vars
            .iter()
            .all(|v| atom.args().contains(&Term::Var(*v)))
    })
}

/// Returns the guard atom of the rule (the first positive body atom containing
/// all body variables), if one exists.
pub fn guard_of(rule: &Ntgd) -> Option<ntgd_core::Atom> {
    let body_vars = rule.universal_variables();
    rule.body_positive()
        .into_iter()
        .find(|atom| {
            body_vars
                .iter()
                .all(|v| atom.args().contains(&Term::Var(*v)))
        })
        .cloned()
}

/// Returns `true` if every rule of the program is guarded (`GTGD¬`
/// membership).
pub fn is_guarded(program: &Program) -> bool {
    program.rules().iter().all(is_guarded_rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_parser::{parse_program, parse_rule};

    #[test]
    fn single_atom_bodies_are_guarded() {
        let r = parse_rule("person(X) -> hasFather(X, Y).").unwrap();
        assert!(is_guarded_rule(&r));
        assert_eq!(guard_of(&r).unwrap().predicate().as_str(), "person");
    }

    #[test]
    fn joins_without_a_covering_atom_are_not_guarded() {
        let r = parse_rule("e(X, Y), e(Y, Z) -> e(X, Z).").unwrap();
        assert!(!is_guarded_rule(&r));
        assert!(guard_of(&r).is_none());
    }

    #[test]
    fn a_wide_atom_can_guard_a_join() {
        let r = parse_rule("g(X, Y, Z), e(X, Y), e(Y, Z) -> t(X, Z).").unwrap();
        assert!(is_guarded_rule(&r));
        assert_eq!(guard_of(&r).unwrap().predicate().as_str(), "g");
    }

    #[test]
    fn guard_must_cover_variables_of_negative_literals_too() {
        // W occurs only in the negated atom and in no positive atom other
        // than the guard candidate e(X, Y): not guarded.
        let r = parse_rule("e(X, Y), f(W), not s(X, W) -> t(X).").unwrap();
        assert!(!is_guarded_rule(&r));
        let r2 = parse_rule("g(X, Y, W), not s(X, W) -> t(X).").unwrap();
        assert!(is_guarded_rule(&r2));
    }

    #[test]
    fn variable_free_and_empty_bodies_are_trivially_guarded() {
        let r = parse_rule("-> p(X).").unwrap();
        assert!(is_guarded_rule(&r));
        let r2 = parse_rule("not saturate -> saturate.").unwrap();
        assert!(is_guarded_rule(&r2));
    }

    #[test]
    fn program_level_check_requires_all_rules_guarded() {
        let p = parse_program(
            "person(X) -> hasFather(X, Y). hasFather(X, Y), person(Y) -> child(Y, X).",
        )
        .unwrap();
        assert!(is_guarded(&p));
        let p2 = parse_program(
            "person(X) -> hasFather(X, Y). hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).",
        )
        .unwrap();
        assert!(!is_guarded(&p2));
        assert!(is_guarded(&Program::new()));
    }
}
