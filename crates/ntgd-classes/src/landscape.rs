//! One-stop classification of a program against every class implemented in
//! this crate.
//!
//! The paper studies three decidability paradigms (weak-acyclicity, stickiness
//! and guardedness); this crate additionally implements the finer fragments
//! and acyclicity notions that the surrounding literature [2, 4, 7] uses.
//! [`classify`] runs every checker once and returns a [`ClassReport`], which
//! the experiments binary prints as a table and which tests use to verify the
//! known containments between classes.

use std::fmt;

use ntgd_core::Program;

use crate::fragments::{
    is_frontier_guarded, is_frontier_one, is_full, is_linear, is_weakly_frontier_guarded,
    is_weakly_guarded,
};
use crate::guardedness::is_guarded;
use crate::joint_acyclicity::is_jointly_acyclic;
use crate::mfa::is_model_faithful_acyclic;
use crate::rule_dependencies::is_agrd;
use crate::stickiness::is_sticky;
use crate::stratification::is_stratified;
use crate::triangular::is_triangularly_guarded;
use crate::weak_acyclicity::is_weakly_acyclic;

/// The membership of a program in every syntactic class implemented by this
/// crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassReport {
    /// Weak-acyclicity (the paper's `WATGD¬`).
    pub weakly_acyclic: bool,
    /// Joint acyclicity (Krötzsch & Rudolph).
    pub jointly_acyclic: bool,
    /// Model-faithful acyclicity (critical-instance Skolem chase).
    pub model_faithful_acyclic: bool,
    /// Acyclic graph of rule dependencies.
    pub agrd: bool,
    /// Stickiness (the paper's `STGD¬`).
    pub sticky: bool,
    /// Guardedness (the paper's `GTGD¬`).
    pub guarded: bool,
    /// Weak guardedness (guards only need to cover harmful variables).
    pub weakly_guarded: bool,
    /// Frontier-guardedness.
    pub frontier_guarded: bool,
    /// Weak frontier-guardedness.
    pub weakly_frontier_guarded: bool,
    /// Linearity (at most one positive body atom per rule).
    pub linear: bool,
    /// Frontier-1 (at most one frontier variable per rule).
    pub frontier_one: bool,
    /// Fullness (no existentially quantified variables).
    pub full: bool,
    /// Stratification of the negation (predicate dependency graph has no
    /// cycle through a negative edge).
    pub stratified: bool,
    /// Triangular guardedness (Asuncion & Zhang): every pair of frontier
    /// variables co-occurs in some positive body atom.
    pub triangularly_guarded: bool,
}

/// The coarse decidability verdict a [`ClassReport`] supports: what the class
/// membership guarantees about chase termination and reasoning.  A pure
/// function of the program text, so services can expose it in deterministic
/// transcripts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClassVerdict {
    /// Some membership guarantees the (restricted) chase terminates on every
    /// database: the chase may run without a step budget.
    Terminating,
    /// No termination guarantee, but some membership keeps reasoning
    /// decidable (guardedness/stickiness-style fragments).
    Decidable,
    /// The program sits in none of the implemented fragments: budgets stay on
    /// and callers deserve a warning.
    OutOfFragment,
}

impl ClassVerdict {
    /// The verdict as a stable lowercase label (used in STATS lines, obs
    /// counter names and log events).
    pub fn label(&self) -> &'static str {
        match self {
            ClassVerdict::Terminating => "terminating",
            ClassVerdict::Decidable => "decidable",
            ClassVerdict::OutOfFragment => "out-of-fragment",
        }
    }
}

impl fmt::Display for ClassVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl ClassReport {
    /// The classes the program belongs to, as short lowercase names.
    pub fn member_classes(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for (name, member) in self.entries() {
            if member {
                out.push(name);
            }
        }
        out
    }

    /// `(class name, membership)` pairs in a fixed order.
    pub fn entries(&self) -> [(&'static str, bool); 14] {
        [
            ("weakly-acyclic", self.weakly_acyclic),
            ("jointly-acyclic", self.jointly_acyclic),
            ("mfa", self.model_faithful_acyclic),
            ("agrd", self.agrd),
            ("sticky", self.sticky),
            ("guarded", self.guarded),
            ("weakly-guarded", self.weakly_guarded),
            ("frontier-guarded", self.frontier_guarded),
            ("weakly-frontier-guarded", self.weakly_frontier_guarded),
            ("triangularly-guarded", self.triangularly_guarded),
            ("linear", self.linear),
            ("frontier-1", self.frontier_one),
            ("full", self.full),
            ("stratified", self.stratified),
        ]
    }

    /// Returns `true` if some membership guarantees that the (restricted)
    /// chase terminates on every database, so it may run without a step
    /// budget: the acyclicity notions, plus fullness (no existential ever
    /// fires, so the chase is plain Datalog saturation).
    pub fn chase_terminating(&self) -> bool {
        self.weakly_acyclic
            || self.jointly_acyclic
            || self.model_faithful_acyclic
            || self.agrd
            || self.full
    }

    /// Returns `true` if some membership keeps reasoning decidable even
    /// though the chase may not terminate (the guardedness/stickiness
    /// paradigms and their refinements).
    pub fn decidable(&self) -> bool {
        self.chase_terminating()
            || self.sticky
            || self.guarded
            || self.weakly_guarded
            || self.frontier_guarded
            || self.weakly_frontier_guarded
            || self.triangularly_guarded
            || self.linear
            || self.frontier_one
    }

    /// The coarse decidability verdict this report supports.
    pub fn verdict(&self) -> ClassVerdict {
        if self.chase_terminating() {
            ClassVerdict::Terminating
        } else if self.decidable() {
            ClassVerdict::Decidable
        } else {
            ClassVerdict::OutOfFragment
        }
    }

    /// Checks the containments that hold between the implemented classes;
    /// returns the name of the first violated containment, if any.  Useful in
    /// tests and as a sanity check in the experiments binary.
    pub fn violated_containment(&self) -> Option<&'static str> {
        let containments: [(&'static str, bool, bool); 8] = [
            (
                "weakly-acyclic ⊆ jointly-acyclic",
                self.weakly_acyclic,
                self.jointly_acyclic,
            ),
            (
                "jointly-acyclic ⊆ mfa",
                self.jointly_acyclic,
                self.model_faithful_acyclic,
            ),
            ("linear ⊆ guarded", self.linear, self.guarded),
            (
                "guarded ⊆ weakly-guarded",
                self.guarded,
                self.weakly_guarded,
            ),
            (
                "guarded ⊆ frontier-guarded",
                self.guarded,
                self.frontier_guarded,
            ),
            (
                "frontier-guarded ⊆ weakly-frontier-guarded",
                self.frontier_guarded,
                self.weakly_frontier_guarded,
            ),
            (
                "weakly-guarded ⊆ weakly-frontier-guarded",
                self.weakly_guarded,
                self.weakly_frontier_guarded,
            ),
            (
                "frontier-guarded ⊆ triangularly-guarded",
                self.frontier_guarded,
                self.triangularly_guarded,
            ),
        ];
        containments
            .into_iter()
            .find(|(_, sub, sup)| *sub && !*sup)
            .map(|(name, _, _)| name)
    }
}

impl fmt::Display for ClassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let members = self.member_classes();
        if members.is_empty() {
            write!(f, "(no class)")
        } else {
            write!(f, "{}", members.join(", "))
        }
    }
}

/// Runs every class checker of this crate on the program.
pub fn classify(program: &Program) -> ClassReport {
    ClassReport {
        weakly_acyclic: is_weakly_acyclic(program),
        jointly_acyclic: is_jointly_acyclic(program),
        model_faithful_acyclic: is_model_faithful_acyclic(program),
        agrd: is_agrd(program),
        sticky: is_sticky(program),
        guarded: is_guarded(program),
        weakly_guarded: is_weakly_guarded(program),
        frontier_guarded: is_frontier_guarded(program),
        weakly_frontier_guarded: is_weakly_frontier_guarded(program),
        linear: is_linear(program),
        frontier_one: is_frontier_one(program),
        full: is_full(program),
        stratified: is_stratified(program),
        triangularly_guarded: is_triangularly_guarded(program),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_parser::parse_program;

    const EXAMPLE1: &str = "person(X) -> hasFather(X, Y).\
         hasFather(X, Y) -> sameAs(Y, Y).\
         hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).";

    #[test]
    fn example1_classification_matches_the_paper() {
        let report = classify(&parse_program(EXAMPLE1).unwrap());
        assert!(report.weakly_acyclic);
        assert!(!report.guarded);
        assert!(!report.sticky);
        assert!(!report.full);
        assert!(report.stratified);
        assert_eq!(report.violated_containment(), None);
    }

    #[test]
    fn containments_hold_on_a_sample_of_programs() {
        let samples = [
            EXAMPLE1,
            "p(X) -> q(X, Y). q(X, Y) -> r(Y).",
            "e(X, Y), e(Y, Z) -> e(X, Z).",
            "person(X) -> parent(X, Y), person(Y).",
            "p(X), not q(X) -> r(X). r(X) -> q(X).",
            "t(X, Y, Z) -> s(Y, W). r(X, Y), p(Y, Z) -> t(X, Y, W).",
            "p(X) -> q(X, Y). q(X, Y), s(X) -> q(Z, X).",
            "node(X) -> colour(X, C). colour(X, C), colour(Y, C), edge(X, Y) -> clash.",
        ];
        for text in samples {
            let report = classify(&parse_program(text).unwrap());
            assert_eq!(
                report.violated_containment(),
                None,
                "containment violated for {text}: {report}"
            );
        }
    }

    #[test]
    fn linear_programs_are_guarded() {
        let report = classify(&parse_program("p(X) -> q(X, Y). q(X, Y) -> r(X).").unwrap());
        assert!(report.linear);
        assert!(report.guarded);
        assert!(report.frontier_guarded);
    }

    #[test]
    fn full_non_recursive_programs_sit_in_almost_every_class() {
        let report = classify(&parse_program("p(X) -> q(X). q(X), not r(X) -> s(X).").unwrap());
        assert!(report.full);
        assert!(report.weakly_acyclic);
        assert!(report.jointly_acyclic);
        assert!(report.model_faithful_acyclic);
        assert!(report.agrd);
        assert!(report.guarded);
        assert!(report.stratified);
        assert!(report.member_classes().len() >= 10);
    }

    #[test]
    fn verdicts_follow_the_membership_guarantees() {
        // Weakly acyclic: the chase terminates, no budget needed.
        let terminating = classify(&parse_program(EXAMPLE1).unwrap());
        assert_eq!(terminating.verdict(), ClassVerdict::Terminating);
        assert!(terminating.chase_terminating());

        // Guarded but with a non-terminating chase: decidable only.
        let decidable = classify(&parse_program("person(X) -> parent(X, Y), person(Y).").unwrap());
        assert!(!decidable.chase_terminating());
        assert!(decidable.decidable());
        assert_eq!(decidable.verdict(), ClassVerdict::Decidable);

        // Triangularly guarded alone (with a head cycle defeating the
        // acyclicity notions) still counts as decidable.
        let triangular = classify(
            &parse_program("r(X, Y), s(Y, Z), t(X, Z) -> u(X, Y, Z), r(Y, W), s(W, X).").unwrap(),
        );
        assert!(triangular.triangularly_guarded);
        assert!(!triangular.frontier_guarded);

        // Out of fragment: existential recursion with an unguardable join.
        let out = classify(
            &parse_program("e(X, Y), e(Y, Z) -> e(X, Z). e(X, Y) -> e(Y, W).").unwrap(),
        );
        assert_eq!(out.verdict(), ClassVerdict::OutOfFragment);
        assert_eq!(out.verdict().label(), "out-of-fragment");
        assert_eq!(ClassVerdict::Terminating.label(), "terminating");
        assert_eq!(ClassVerdict::Decidable.to_string(), "decidable");
    }

    #[test]
    fn display_lists_member_classes() {
        let report = classify(&parse_program("p(X) -> q(X).").unwrap());
        let text = format!("{report}");
        assert!(text.contains("weakly-acyclic"));
        assert!(text.contains("guarded"));
    }
}
