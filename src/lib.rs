//! Facade crate re-exporting the whole `stable-tgd` workspace.
pub use ntgd_chase as chase;
pub use ntgd_classes as classes;
pub use ntgd_core as core;
pub use ntgd_disjunction as disjunction;
pub use ntgd_encodings as encodings;
pub use ntgd_loadgen as loadgen;
pub use ntgd_lp as lp;
pub use ntgd_parser as parser;
pub use ntgd_sat as sat;
pub use ntgd_server as server;
pub use ntgd_sms as sms;
pub use ntgd_treewidth as treewidth;
