//! Cross-semantics **differential oracle** for incremental `MODELS`.
//!
//! Caching semantic state across asserts and retracts is exactly where
//! subtle unsoundness hides, so every cached answer is checked against a
//! from-scratch oracle: PRNG-generated programs (normal and disjunctive,
//! with negation and existential rules) are driven through a random
//! `ASSERT` / `RETRACT-TO` / `MODELS` command stream, and after **every**
//! `MODELS` the session's answer — produced by the incremental
//! [`stable_tgd::sms::IncrementalSmsState`] path — must equal, line for
//! line, the stable models a fresh [`stable_tgd::sms::SmsEngine`] computes
//! from scratch over the same live fact set (sorted model renderings; null
//! names are canonical because both sides build the identical candidate
//! domain, so string equality is exact).
//!
//! The matrix test additionally replays fixed streams at `NTGD_THREADS ∈
//! {1, 2, 8}` and in both pool modes (persistent pool and scoped-spawn
//! fallback) and requires the **entire transcript** to be bit-identical —
//! the determinism contract of `ntgd_core::parallel` extended to the cached
//! grounding.
//!
//! Every case is reproducible from its printed seed; an extra round takes
//! its seed from `NTGD_DIFF_SEED` (CI randomises it and echoes the value in
//! the job log).

use std::sync::Arc;

use stable_tgd::core::{parallel, Database, DisjunctiveProgram};
use stable_tgd::parser::parse_unit;
use stable_tgd::server::{BaseRegistry, Session, SessionConfig};
use stable_tgd::sms::{SmsEngine, SmsOptions};

/// Oracle/session model cap: streams are sized to stay far below it, so the
/// compared sets are never truncated (truncation order is not part of the
/// equivalence contract).
const MAX_MODELS: usize = 2048;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

/// A random program mixing positive rules, stratified and unstratified
/// negation, and optionally one existential and one disjunctive rule.  The
/// shapes are chosen so the restricted chase of the positive part always
/// terminates (nulls only ever reach the terminal predicates `q` and `t`),
/// keeping the `Auto` null budget finite, and so model counts stay far
/// below [`MAX_MODELS`] over the two-constant fact pool.
fn random_program(rng: &mut Rng) -> String {
    let core = [
        "p(X) -> q(X).",
        "r(X, Y) -> q(Y).",
        "r(X, Y) -> p(X).",
        "p(X), not q(X) -> s(X).",
        "q(X), not s(X) -> t(X).",
        "p(X), not t(X) -> s(X).",
        "s(X), not p(X) -> t(X).",
    ];
    let mut rules: Vec<String> = Vec::new();
    for _ in 0..2 + rng.below(3) {
        rules.push((*rng.pick(&core)).to_owned());
    }
    if rng.chance(40) {
        rules.push("s(X) -> r(X, Y).".to_owned());
    }
    if rng.chance(40) {
        rules.push("q(X) -> red(X) | blue(X).".to_owned());
    }
    rules.join(" ")
}

/// A random ground fact over the two-constant pool.
fn random_fact(rng: &mut Rng) -> String {
    let constants = ["a", "b"];
    let c = *rng.pick(&constants);
    match rng.below(4) {
        0 => format!("p({c})."),
        1 => format!("q({c})."),
        2 => format!("s({c})."),
        _ => format!("r({c}, {}).", *rng.pick(&constants)),
    }
}

/// Asserts one `MODELS` answer equals the from-scratch oracle on the same
/// live fact set; returns the session's response lines for transcript
/// comparison.
fn check_models(
    session: &mut Session,
    program: &Arc<DisjunctiveProgram>,
    context: &str,
) -> Vec<String> {
    let response = session.execute(&format!("MODELS sms max={MAX_MODELS}"));
    let database =
        Database::from_facts(session.facts().iter().cloned()).expect("session facts are ground");
    let oracle = SmsEngine::new_shared(Arc::clone(program))
        .with_options(SmsOptions {
            max_models: MAX_MODELS,
            ..SmsOptions::default()
        })
        .stable_models(&database);
    match oracle {
        Ok(models) => {
            assert!(
                models.len() < MAX_MODELS,
                "{context}: oracle hit the model cap; shrink the workload"
            );
            let mut expected: Vec<String> = models.iter().map(|m| format!("MODEL {m}")).collect();
            expected.sort();
            assert!(
                response.is_ok(),
                "{context}: oracle answered but the session erred: {:?}",
                response.lines
            );
            let data = &response.lines[..response.lines.len() - 1];
            assert_eq!(
                data,
                expected.as_slice(),
                "{context}: incremental MODELS diverged from the from-scratch oracle"
            );
        }
        Err(error) => {
            assert!(
                !response.is_ok(),
                "{context}: oracle erred ({error}) but the session answered: {:?}",
                response.lines
            );
        }
    }
    response.lines
}

/// Reads one `STATS sms` counter.
fn sms_counter(session: &mut Session, key: &str) -> u64 {
    let marker = format!("STAT {key}=");
    session
        .execute("STATS sms")
        .lines
        .iter()
        .find_map(|line| line.strip_prefix(marker.as_str()))
        .and_then(|value| value.parse().ok())
        .unwrap_or(0)
}

/// Cumulative cache-behaviour tallies of one or more streams, used to prove
/// the harness actually exercises every path of the caching contract.
#[derive(Default)]
struct Exercised {
    reuses: u64,
    rebuilds: u64,
    rollbacks: u64,
    invalidations: u64,
}

/// Drives one random command stream through an incremental session, checking
/// every `MODELS` against the oracle; returns the full transcript (every
/// response line, in order) plus the cache tallies.
fn run_stream(seed: u64, exercised: &mut Exercised) -> Vec<String> {
    let mut rng = Rng::new(seed);
    let program_text = random_program(&mut rng);
    let program = Arc::new(
        parse_unit(&program_text)
            .expect("generated programs parse")
            .disjunctive_program()
            .expect("generated programs are consistent"),
    );
    // Pin the path under test explicitly: SessionConfig::default() follows
    // the ambient NTGD_SMS_INCREMENTAL variable, and this harness must test
    // the incremental path even when that debugging escape hatch is set.
    let mut session = Session::new(SessionConfig {
        incremental_models: true,
        ..SessionConfig::default()
    });
    let mut transcript = Vec::new();
    let load = session.execute(&format!("LOAD {program_text}"));
    assert!(load.is_ok(), "seed {seed}: LOAD failed: {:?}", load.lines);
    transcript.extend(load.lines);
    for step in 0..12 {
        let context = format!("seed {seed} step {step} program `{program_text}`");
        let roll = rng.below(10);
        if roll < 5 {
            let count = 1 + rng.below(2);
            let facts: Vec<String> = (0..count).map(|_| random_fact(&mut rng)).collect();
            let response = session.execute(&format!("ASSERT {}", facts.join(" ")));
            assert!(response.is_ok(), "{context}: ASSERT failed");
            transcript.extend(response.lines);
        } else if roll < 7 {
            let marks = session.marks();
            if marks > 0 {
                let target = rng.below(marks);
                let response = session.execute(&format!("RETRACT-TO {target}"));
                assert!(response.is_ok(), "{context}: RETRACT-TO failed");
                transcript.extend(response.lines);
            }
        } else {
            transcript.extend(check_models(&mut session, &program, &context));
        }
    }
    let context = format!("seed {seed} final program `{program_text}`");
    transcript.extend(check_models(&mut session, &program, &context));
    exercised.reuses += sms_counter(&mut session, "sms_reuses");
    exercised.rebuilds += sms_counter(&mut session, "sms_rebuilds");
    exercised.rollbacks += sms_counter(&mut session, "sms_rollbacks");
    exercised.invalidations += sms_counter(&mut session, "sms_invalidations");
    transcript
}

#[test]
fn fixed_seeds_match_the_from_scratch_oracle() {
    let mut exercised = Exercised::default();
    for seed in [0xD1FF_0001u64, 0xD1FF_0002, 0xD1FF_0003, 0xD1FF_0004] {
        eprintln!("differential_oracle fixed seed {seed:#x}");
        run_stream(seed, &mut exercised);
    }
    // The suite must genuinely exercise the cache, not just rebuild: the
    // fixed seeds are chosen so both the semi-naive advance and the
    // truncation rollback happen at least once.
    assert!(exercised.rebuilds > 0, "no stream ever built state");
    assert!(
        exercised.reuses > 0,
        "no stream ever advanced incrementally — the harness is vacuous"
    );
    assert!(
        exercised.rollbacks + exercised.invalidations > 0,
        "no stream ever retracted cached state"
    );
}

#[test]
fn thread_and_pool_matrix_is_bit_identical_and_oracle_equal() {
    // Observability is forced ON for the whole matrix: its instruments sit
    // on the chase, the grounding and the CEGAR loop, and this assertion is
    // what makes "timing data never influences execution decisions" a
    // tested contract rather than a convention (recording is on by default,
    // but an ambient NTGD_OBS=0 must not be able to weaken the test).
    stable_tgd::core::obs::set_enabled_override(Some(true));
    let seeds = [0xD1FF_0101u64, 0xD1FF_0102];
    for seed in seeds {
        let mut reference: Option<Vec<String>> = None;
        for threads in [1usize, 2, 8] {
            for pooled in [true, false] {
                parallel::set_thread_override(Some(threads));
                parallel::set_pool_enabled(Some(pooled));
                let mut exercised = Exercised::default();
                let transcript = run_stream(seed, &mut exercised);
                parallel::set_pool_enabled(None);
                parallel::set_thread_override(None);
                match &reference {
                    None => reference = Some(transcript),
                    Some(expected) => assert_eq!(
                        expected, &transcript,
                        "seed {seed:#x}: transcript differs at threads={threads} pooled={pooled}"
                    ),
                }
            }
        }
    }
    stable_tgd::core::obs::set_enabled_override(None);
}

/// Replays a pre-generated command stream through one session, checking
/// every `MODELS` marker against the from-scratch oracle; returns the full
/// transcript.
fn replay(
    commands: &[String],
    config: &SessionConfig,
    program: &Arc<DisjunctiveProgram>,
    context: &str,
) -> Vec<String> {
    let mut session = Session::new(config.clone());
    let mut transcript = Vec::new();
    for command in commands {
        if command == "MODELS" {
            transcript.extend(check_models(&mut session, program, context));
        } else {
            let response = session.execute(command);
            assert!(
                response.is_ok(),
                "{context}: `{command}` failed: {:?}",
                response.lines
            );
            transcript.extend(response.lines);
        }
    }
    transcript
}

#[test]
fn forked_sessions_match_private_from_scratch_sessions() {
    // The shared-base contract: a session forked from the registry (its
    // `LOAD` reuses another session's frozen chased base copy-on-write)
    // must transcribe **bit-identically** to a private session that built
    // everything from scratch — and both must match the from-scratch SMS
    // oracle after every `MODELS`.  Streams are pre-generated so forked and
    // private sessions replay the identical requests.
    for seed in [0xF06B_0001u64, 0xF06B_0002, 0xF06B_0003] {
        let mut rng = Rng::new(seed);
        let mut program_text = random_program(&mut rng);
        for _ in 0..2 {
            program_text.push(' ');
            program_text.push_str(&random_fact(&mut rng));
        }
        let program = Arc::new(
            parse_unit(&program_text)
                .expect("generated programs parse")
                .disjunctive_program()
                .expect("generated programs are consistent"),
        );
        let registry = Arc::new(BaseRegistry::new());
        let shared = SessionConfig {
            incremental_models: true,
            base_registry: Some(Arc::clone(&registry)),
            ..SessionConfig::default()
        };
        let private = SessionConfig {
            incremental_models: true,
            base_registry: None,
            ..SessionConfig::default()
        };
        // Several sessions load the same program: the first registers the
        // base (and forks its own freeze), the rest fork the registry hit
        // at random points in their streams.
        for fork in 0..3 {
            let context = format!("seed {seed:#x} fork {fork} program `{program_text}`");
            let mut commands = vec![format!("LOAD {program_text}")];
            let mut marks = 1usize;
            for _ in 0..8 {
                let roll = rng.below(10);
                if roll < 5 {
                    commands.push(format!("ASSERT {}", random_fact(&mut rng)));
                    marks += 1;
                } else if roll < 7 {
                    let target = rng.below(marks);
                    commands.push(format!("RETRACT-TO {target}"));
                    marks = target + 1;
                } else {
                    commands.push("MODELS".to_owned());
                }
            }
            commands.push("MODELS".to_owned());
            let forked_transcript = replay(&commands, &shared, &program, &context);
            let private_transcript = replay(&commands, &private, &program, &context);
            assert_eq!(
                forked_transcript, private_transcript,
                "{context}: forked session diverged from the private from-scratch session"
            );
        }
        assert_eq!(registry.len(), 1, "seed {seed:#x}: one program, one base");
    }
}

#[test]
fn forked_transcripts_are_bit_identical_across_threads_and_pool_modes() {
    // The fork determinism contract of the shared-base registry, under the
    // full parallelism matrix: a forked session's transcript must not
    // depend on NTGD_THREADS or the pool mode — and must equal the private
    // from-scratch transcript in every cell.
    let seed = 0xF06B_0201u64;
    let mut rng = Rng::new(seed);
    let mut program_text = random_program(&mut rng);
    program_text.push(' ');
    program_text.push_str(&random_fact(&mut rng));
    let program = Arc::new(
        parse_unit(&program_text)
            .expect("generated programs parse")
            .disjunctive_program()
            .expect("generated programs are consistent"),
    );
    let mut commands = vec![format!("LOAD {program_text}")];
    for _ in 0..4 {
        commands.push(format!("ASSERT {}", random_fact(&mut rng)));
        commands.push("MODELS".to_owned());
    }
    commands.push("RETRACT-TO 0".to_owned());
    commands.push("MODELS".to_owned());
    let mut reference: Option<Vec<String>> = None;
    for threads in [1usize, 2, 8] {
        for pooled in [true, false] {
            parallel::set_thread_override(Some(threads));
            parallel::set_pool_enabled(Some(pooled));
            let context =
                format!("seed {seed:#x} threads {threads} pooled {pooled} `{program_text}`");
            let registry = Arc::new(BaseRegistry::new());
            let shared = SessionConfig {
                incremental_models: true,
                base_registry: Some(Arc::clone(&registry)),
                ..SessionConfig::default()
            };
            let private = SessionConfig {
                incremental_models: true,
                base_registry: None,
                ..SessionConfig::default()
            };
            // Two forks per cell: the registering session and a pure hit.
            let registering = replay(&commands, &shared, &program, &context);
            let hit = replay(&commands, &shared, &program, &context);
            let scratch = replay(&commands, &private, &program, &context);
            parallel::set_pool_enabled(None);
            parallel::set_thread_override(None);
            assert_eq!(registering, hit, "{context}: fork order leaked");
            assert_eq!(hit, scratch, "{context}: fork diverged from scratch");
            match &reference {
                None => reference = Some(scratch),
                Some(expected) => assert_eq!(
                    expected, &scratch,
                    "{context}: transcript depends on the parallelism cell"
                ),
            }
        }
    }
}

/// A PRNG program that is weakly acyclic **by construction**: a stratified
/// forward chain `p → q → r(∃) → t → u` whose only existential rule points
/// strictly down the chain, so the dependency graph has no cycle through a
/// special edge and the restricted chase terminates on every fact set.
fn random_weakly_acyclic_program(rng: &mut Rng) -> String {
    let core = [
        "p(X) -> q(X).",
        "q(X) -> r(X, Y).",
        "r(X, Y) -> t(Y).",
        "r(X, Y) -> t(X).",
        "t(X) -> u(X).",
    ];
    // Always keep the existential rule so the lifted Auto null budget is
    // actually exercised, then sample the rest of the chain around it.
    let mut rules = vec!["q(X) -> r(X, Y).".to_owned()];
    for _ in 0..2 + rng.below(3) {
        rules.push((*rng.pick(&core)).to_owned());
    }
    rules.join(" ")
}

#[test]
fn classified_budget_free_runs_match_blind_budgeted_runs() {
    // The decidability-aware front door must be invisible in results: a
    // program classified chase-terminating runs with NO chase step budget
    // and the *exact* Auto null budget, and that lifted run must be
    // bit-identical to the blind budgeted run — classification is purely
    // syntactic, so the verdict may change resource policy but never
    // answers — across NTGD_THREADS {1, 2, 8} and both pool modes.  A
    // third config proves the lift is real rather than vacuous: with a
    // 3-step budget these programs could not even LOAD blind (the session
    // unit tests pin that failure), yet the classified session transcribes
    // identically to the default-budget runs.
    for seed in [0xC1A5_0001u64, 0xC1A5_0002] {
        let mut rng = Rng::new(seed);
        let program_text = random_weakly_acyclic_program(&mut rng);
        let program = Arc::new(
            parse_unit(&program_text)
                .expect("generated programs parse")
                .disjunctive_program()
                .expect("generated programs are consistent"),
        );
        let mut commands = vec![format!("LOAD {program_text}")];
        let mut marks = 1usize;
        for _ in 0..8 {
            let roll = rng.below(10);
            if roll < 5 {
                commands.push(format!("ASSERT {}", random_fact(&mut rng)));
                marks += 1;
            } else if roll < 7 {
                let target = rng.below(marks);
                commands.push(format!("RETRACT-TO {target}"));
                marks = target + 1;
            } else {
                commands.push("MODELS".to_owned());
            }
        }
        commands.push("MODELS".to_owned());
        let classified = SessionConfig {
            incremental_models: true,
            classify: true,
            ..SessionConfig::default()
        };
        let blind = SessionConfig {
            incremental_models: true,
            classify: false,
            ..SessionConfig::default()
        };
        let tight = SessionConfig {
            incremental_models: true,
            classify: true,
            max_steps: 3,
            ..SessionConfig::default()
        };
        let mut reference: Option<Vec<String>> = None;
        for threads in [1usize, 2, 8] {
            for pooled in [true, false] {
                parallel::set_thread_override(Some(threads));
                parallel::set_pool_enabled(Some(pooled));
                let context =
                    format!("seed {seed:#x} threads {threads} pooled {pooled} `{program_text}`");
                let lifted = replay(&commands, &classified, &program, &context);
                let budgeted = replay(&commands, &blind, &program, &context);
                let lifted_tight = replay(&commands, &tight, &program, &context);
                parallel::set_pool_enabled(None);
                parallel::set_thread_override(None);
                assert_eq!(
                    lifted, budgeted,
                    "{context}: the lifted budget changed results"
                );
                assert_eq!(
                    lifted, lifted_tight,
                    "{context}: a terminating verdict must make max_steps irrelevant"
                );
                match &reference {
                    None => reference = Some(lifted),
                    Some(expected) => assert_eq!(
                        expected, &lifted,
                        "{context}: transcript depends on the parallelism cell"
                    ),
                }
            }
        }
    }
}

#[test]
fn env_seeded_round_matches_the_oracle() {
    // CI randomises NTGD_DIFF_SEED and echoes it; reproduce a failure with
    // `NTGD_DIFF_SEED=<seed> cargo test --test differential_oracle`.
    let seed = std::env::var("NTGD_DIFF_SEED")
        .ok()
        .and_then(|value| value.parse::<u64>().ok())
        .unwrap_or(0xD1FF_BEEF);
    eprintln!("differential_oracle NTGD_DIFF_SEED round: seed {seed}");
    let mut exercised = Exercised::default();
    for offset in 0..3u64 {
        run_stream(seed.wrapping_add(offset), &mut exercised);
    }
    assert!(exercised.rebuilds > 0);
}
