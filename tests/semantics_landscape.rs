//! Cross-crate integration tests for the extended landscape around the
//! paper's core results: the equality-friendly WFS baseline, the chase
//! variants and their cores, the acyclicity/fragment analyzers, and the
//! treewidth machinery behind the stable tree model property.

use stable_tgd::chase::{
    core_of, is_core, oblivious_chase, restricted_chase, skolem_chase, ChaseConfig,
};
use stable_tgd::classes;
use stable_tgd::lp::{efwfs_entails_cautious, EfwfsConfig};
use stable_tgd::parser::{parse_database, parse_program, parse_query};
use stable_tgd::sms::{SmsAnswer, SmsEngine};
use stable_tgd::treewidth::{interpretation_treewidth, min_fill_decomposition, GaifmanGraph};

const EXAMPLE1: &str = "person(X) -> hasFather(X, Y).\
     hasFather(X, Y) -> sameAs(Y, Y).\
     hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).";

#[test]
fn all_four_semantics_are_separated_exactly_as_the_paper_describes() {
    let database = parse_database("person(alice).").unwrap();
    let program = parse_program(EXAMPLE1).unwrap();
    let config = EfwfsConfig::default();
    let sms = SmsEngine::new(&program);

    // Example 2: ¬hasFather(alice, bob) — the EFWFS and the new semantics
    // both (correctly) refuse to entail it.
    let father_query = parse_query("?- not hasFather(alice, bob).").unwrap();
    assert!(!efwfs_entails_cautious(&database, &program, &father_query, &config).entailed);
    assert_eq!(
        sms.entails_cautious(&database, &father_query).unwrap(),
        SmsAnswer::NotEntailed
    );

    // Example 3: ¬abnormal(alice) — the EFWFS fails to entail it, the new
    // semantics entails it.
    let normal_query = parse_query("?- not abnormal(alice).").unwrap();
    assert!(!efwfs_entails_cautious(&database, &program, &normal_query, &config).entailed);
    assert_eq!(
        sms.entails_cautious(&database, &normal_query).unwrap(),
        SmsAnswer::Entailed
    );
}

#[test]
fn chase_variants_of_example1_are_ordered_and_share_their_core() {
    let database = parse_database("person(alice). hasFather(alice, bob).").unwrap();
    let program = parse_program(EXAMPLE1).unwrap();
    let config = ChaseConfig::default();

    let restricted = restricted_chase(&database, &program, &config);
    let skolem = skolem_chase(&database, &program, &config);
    let oblivious = oblivious_chase(&database, &program, &config);
    assert!(restricted.terminated());
    assert!(skolem.terminated());
    assert!(oblivious.terminated());
    assert!(restricted.instance.len() <= skolem.instance.len());
    assert!(skolem.instance.len() <= oblivious.instance.len());

    let restricted_core = core_of(&restricted.instance);
    let skolem_core = core_of(&skolem.instance);
    assert_eq!(restricted_core.len(), skolem_core.len());
    assert!(is_core(&restricted_core));
    assert!(is_core(&skolem_core));
}

#[test]
fn stable_models_of_a_weakly_acyclic_program_have_small_treewidth() {
    let database = parse_database("person(alice). person(bo).").unwrap();
    let program = parse_program(EXAMPLE1).unwrap();
    assert!(classes::is_weakly_acyclic(&program));

    let engine = SmsEngine::new(&program);
    let models = engine.stable_models(&database).unwrap();
    assert!(!models.is_empty());
    for model in &models {
        let (width, _) = interpretation_treewidth(model, 14);
        // The Gaifman graph of every stable model here is a disjoint union of
        // person-father stars (plus reflexive sameAs loops): treewidth ≤ 2.
        assert!(width <= 2, "unexpectedly wide stable model: {width}");
        let graph = GaifmanGraph::of_interpretation(model);
        let decomposition = min_fill_decomposition(&graph);
        assert_eq!(decomposition.validate(&graph), Ok(()));
    }
}

#[test]
fn the_class_landscape_places_example1_consistently() {
    let program = parse_program(EXAMPLE1).unwrap();
    let report = classes::classify(&program);
    assert!(report.weakly_acyclic);
    assert!(report.jointly_acyclic);
    assert!(report.model_faithful_acyclic);
    assert!(report.agrd);
    assert!(!report.sticky);
    assert!(!report.guarded);
    assert!(report.frontier_guarded);
    assert!(report.stratified);
    assert_eq!(report.violated_containment(), None);
}

#[test]
fn the_grid_gadget_behind_the_undecidability_proofs_has_growing_treewidth() {
    // The undecidability arguments for sticky/guarded NTGDs (Theorems 4/5)
    // rest on building grids of unbounded size; measure that the grid shape
    // indeed has treewidth growing with its side, in contrast to the flat
    // stable models above.
    use stable_tgd::core::{atom, cst, Interpretation};
    let mut widths = Vec::new();
    for n in [2usize, 3, 4] {
        let mut atoms = Vec::new();
        let name = |r: usize, c: usize| cst(&format!("g{r}_{c}"));
        for r in 0..n {
            for c in 0..n {
                if c + 1 < n {
                    atoms.push(atom("edge", vec![name(r, c), name(r, c + 1)]));
                }
                if r + 1 < n {
                    atoms.push(atom("edge", vec![name(r, c), name(r + 1, c)]));
                }
            }
        }
        let interpretation = Interpretation::from_atoms(atoms);
        widths.push(interpretation_treewidth(&interpretation, 16).0);
    }
    assert_eq!(widths, vec![2, 3, 4]);
}

#[test]
fn efwfs_agrees_with_the_unique_well_founded_model_on_stratified_programs() {
    let database = parse_database("course(db). course(ai). hard(ai).").unwrap();
    let program =
        parse_program("course(X), not hard(X) -> easy(X). easy(X) -> passable(X).").unwrap();
    let config = EfwfsConfig {
        unify_database_constants: false,
        fresh_constants: 0,
        ..EfwfsConfig::default()
    };
    let passable = parse_query("?- passable(db).").unwrap();
    let not_passable_ai = parse_query("?- not passable(ai).").unwrap();
    assert!(efwfs_entails_cautious(&database, &program, &passable, &config).entailed);
    assert!(efwfs_entails_cautious(&database, &program, &not_passable_ai, &config).entailed);

    let sms = SmsEngine::new(&program);
    assert_eq!(
        sms.entails_cautious(&database, &passable).unwrap(),
        SmsAnswer::Entailed
    );
    assert_eq!(
        sms.entails_cautious(&database, &not_passable_ai).unwrap(),
        SmsAnswer::Entailed
    );
}
