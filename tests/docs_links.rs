//! Markdown link checker for the committed documentation: every relative
//! link (and `#fragment` self-link) in `README.md` and `docs/*.md` must
//! resolve.  External `http(s)` links are out of scope — the build is
//! offline — as are bare-text file mentions; only `[text](target)` links
//! are checked.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The markdown files under the documentation contract.
fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&docs)
        .expect("docs/ exists")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "md"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "docs/ holds markdown");
    files.extend(entries);
    files
}

/// Extracts `[text](target)` targets, skipping fenced code blocks (where
/// brackets are code, not links).
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let after = &rest[open + 2..];
            let Some(close) = after.find(')') else { break };
            targets.push(after[..close].to_owned());
            rest = &after[close + 1..];
        }
    }
    targets
}

/// GitHub-style slug of a heading line: lowercase, alphanumerics kept,
/// spaces/hyphens to hyphens, everything else dropped.
fn heading_slug(heading: &str) -> String {
    heading
        .trim_start_matches('#')
        .trim()
        .chars()
        .filter_map(|c| match c {
            'A'..='Z' => Some(c.to_ascii_lowercase()),
            'a'..='z' | '0'..='9' => Some(c),
            ' ' | '-' => Some('-'),
            '_' => Some('_'),
            _ => None,
        })
        .collect()
}

fn heading_slugs(markdown: &str) -> Vec<String> {
    let mut in_fence = false;
    markdown
        .lines()
        .filter(|line| {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                return false;
            }
            !in_fence && line.starts_with('#')
        })
        .map(heading_slug)
        .collect()
}

fn check_file(path: &Path, broken: &mut Vec<String>) {
    let markdown = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let dir = path.parent().expect("doc file has a parent");
    for target in link_targets(&markdown) {
        if target.starts_with("http://") || target.starts_with("https://") {
            continue;
        }
        let (file_part, fragment) = match target.split_once('#') {
            Some((file, frag)) => (file, Some(frag)),
            None => (target.as_str(), None),
        };
        let resolved_doc;
        let doc_for_fragment = if file_part.is_empty() {
            markdown.as_str()
        } else {
            let resolved = dir.join(file_part);
            if !resolved.exists() {
                broken.push(format!("{}: broken link {target}", path.display()));
                continue;
            }
            match fragment {
                None => continue,
                Some(_) => {
                    resolved_doc = std::fs::read_to_string(&resolved).unwrap_or_default();
                    resolved_doc.as_str()
                }
            }
        };
        if let Some(fragment) = fragment {
            if !heading_slugs(doc_for_fragment)
                .iter()
                .any(|s| s == fragment)
            {
                broken.push(format!(
                    "{}: link {target} points at a missing heading",
                    path.display()
                ));
            }
        }
    }
}

#[test]
fn every_relative_doc_link_resolves() {
    let mut broken = Vec::new();
    for file in doc_files() {
        check_file(&file, &mut broken);
    }
    assert!(
        broken.is_empty(),
        "broken documentation links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn the_doc_set_cross_references_itself() {
    // The three docs and the README form one navigation graph: each doc is
    // reachable from the README, and PROTOCOL/OPERATIONS/WORKLOAD_SPEC all
    // point at each other (a regression here usually means a rename broke
    // the contract without updating the hub pages).
    let readme = std::fs::read_to_string(repo_root().join("README.md")).unwrap();
    for doc in [
        "docs/PROTOCOL.md",
        "docs/OPERATIONS.md",
        "docs/WORKLOAD_SPEC.md",
    ] {
        assert!(readme.contains(doc), "README.md no longer links {doc}");
    }
}
