//! Cross-crate integration tests: parse → classify → chase → answer under the
//! three semantics, reproducing the paper's running examples end to end.

use stable_tgd::chase::{
    operational_stable_models, restricted_chase, ChaseConfig, OperationalConfig,
};
use stable_tgd::classes;
use stable_tgd::lp::{LpAnswer, LpEngine, LpLimits};
use stable_tgd::parser::{parse_database, parse_program, parse_query};
use stable_tgd::sms::{SmsAnswer, SmsEngine};

const EXAMPLE1: &str = "person(X) -> hasFather(X, Y).\
     hasFather(X, Y) -> sameAs(Y, Y).\
     hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).";

#[test]
fn example1_is_weakly_acyclic_but_not_guarded() {
    let program = parse_program(EXAMPLE1).unwrap();
    assert!(classes::is_weakly_acyclic(&program));
    assert!(!classes::is_guarded(&program));
    // Not sticky: in the abnormality rule the marked variables Y and Z (they do
    // not propagate to the head) each occur in two body atoms.
    assert!(!classes::is_sticky(&program));
}

#[test]
fn the_three_semantics_disagree_exactly_where_the_paper_says() {
    let database = parse_database("person(alice).").unwrap();
    let program = parse_program(EXAMPLE1).unwrap();
    let negative_query = parse_query("?- not hasFather(alice, bob).").unwrap();

    // LP approach: the query is (unintendedly) entailed.
    let lp = LpEngine::new(&database, &program, &LpLimits::default()).unwrap();
    assert_eq!(lp.entails_cautious(&negative_query), LpAnswer::Entailed);

    // Chase-based operational semantics of [3]: also entailed (the chase
    // never reuses the constant bob as a witness).
    let operational = operational_stable_models(&database, &program, &OperationalConfig::default());
    assert!(!operational.is_empty());
    for model in &operational {
        let mut model = model.clone();
        model.add_domain_element(stable_tgd::core::cst("bob"));
        assert!(negative_query.holds(&model));
    }

    // The paper's new semantics: NOT entailed (Example 4's interpretation is
    // a stable model).
    let sms = SmsEngine::new(&program);
    assert_eq!(
        sms.entails_cautious(&database, &negative_query).unwrap(),
        SmsAnswer::NotEntailed
    );
}

#[test]
fn positive_programs_agree_with_the_chase_on_positive_queries() {
    let database = parse_database("emp(ann). emp(bo). dept(hr).").unwrap();
    let program = parse_program("emp(X) -> worksIn(X, D). worksIn(X, D) -> unit(D).").unwrap();
    let query = parse_query("?- worksIn(ann, D), unit(D).").unwrap();

    let chase = restricted_chase(&database, &program, &ChaseConfig::default());
    assert!(chase.terminated());
    assert!(query.holds(&chase.instance));

    let sms = SmsEngine::new(&program);
    assert_eq!(
        sms.entails_cautious(&database, &query).unwrap(),
        SmsAnswer::Entailed
    );
}

#[test]
fn theorem1_holds_end_to_end_on_an_existential_free_program() {
    let database = parse_database("course(db). course(ai). hard(ai).").unwrap();
    let program =
        parse_program("course(X), not hard(X) -> easy(X). easy(X) -> passable(X).").unwrap();
    let lp = LpEngine::new(&database, &program, &LpLimits::default()).unwrap();
    let sms = SmsEngine::new(&program).with_null_budget(stable_tgd::sms::NullBudget::None);
    let mut lp_models: Vec<Vec<stable_tgd::core::Atom>> = lp
        .models()
        .iter()
        .map(stable_tgd::core::Interpretation::sorted_atoms)
        .collect();
    lp_models.sort();
    let mut sms_models: Vec<Vec<stable_tgd::core::Atom>> = sms
        .stable_models(&database)
        .unwrap()
        .iter()
        .map(stable_tgd::core::Interpretation::sorted_atoms)
        .collect();
    sms_models.sort();
    assert_eq!(lp_models, sms_models);
}

#[test]
fn is_stable_model_agrees_with_enumeration() {
    let database = parse_database("person(alice).").unwrap();
    let program = parse_program(EXAMPLE1).unwrap();
    let sms = SmsEngine::new(&program);
    for model in sms.stable_models(&database).unwrap() {
        assert!(stable_tgd::sms::is_stable_model(
            &database, &program, &model
        ));
        assert!(stable_tgd::sms::is_supported_by_operator(
            &database, &program, &model
        ));
    }
}
