//! Property-based tests over randomly generated programs, databases,
//! interpretations and conjunctions.
//!
//! The generators are driven by a small deterministic xorshift PRNG (the
//! build environment has no crates.io access, so `proptest` is not
//! available); every case is reproducible from its printed seed.
//!
//! The first group of properties is the correctness contract of the indexed
//! join engine: on randomized conjunctions and interpretations — including
//! negative literals, unsafe variables and initial substitutions — the
//! engine must return exactly the same homomorphism set as the retained
//! naive reference matcher (`stable_tgd::core::matcher::reference`), and
//! delta matching must partition the homomorphism space by watermark.

use std::ops::ControlFlow;

use stable_tgd::core::matcher::{self, reference};
use stable_tgd::core::{atom, Atom, Interpretation, Literal, Program, Query, Substitution, Term};
use stable_tgd::lp::{LpEngine, LpLimits};
use stable_tgd::parser::{parse_database, parse_program, parse_rule};
use stable_tgd::sms::{NullBudget, SmsEngine};

/// Deterministic xorshift64* generator for the property tests.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

// ---------------------------------------------------------------------------
// Matcher equivalence: indexed join engine vs naive reference matcher.
// ---------------------------------------------------------------------------

const PREDICATES: &[(&str, usize)] = &[("p", 2), ("q", 1), ("r", 3), ("e", 2)];
const VARIABLES: &[&str] = &["X", "Y", "Z", "W"];

fn random_ground_term(rng: &mut Rng) -> Term {
    if rng.chance(80) {
        stable_tgd::core::cst(&format!("c{}", rng.below(6)))
    } else {
        Term::null(rng.below(3) as u64)
    }
}

fn random_pattern_term(rng: &mut Rng) -> Term {
    if rng.chance(55) {
        stable_tgd::core::var(VARIABLES[rng.below(VARIABLES.len())])
    } else {
        random_ground_term(rng)
    }
}

fn random_interpretation(rng: &mut Rng, max_atoms: usize) -> Interpretation {
    let count = rng.below(max_atoms + 1);
    let mut interpretation = Interpretation::new();
    for _ in 0..count {
        let &(pred, arity) = rng.pick(PREDICATES);
        let args = (0..arity).map(|_| random_ground_term(rng)).collect();
        interpretation.insert(atom(pred, args));
    }
    interpretation
}

fn random_pattern_atom(rng: &mut Rng) -> Atom {
    let &(pred, arity) = rng.pick(PREDICATES);
    let args = (0..arity).map(|_| random_pattern_term(rng)).collect();
    atom(pred, args)
}

fn random_conjunction(rng: &mut Rng) -> Vec<Literal> {
    let positives = rng.below(4); // 0..=3 positive literals
    let negatives = rng.below(3); // 0..=2 negative literals
    let mut literals = Vec::new();
    for _ in 0..positives {
        literals.push(Literal::positive(random_pattern_atom(rng)));
    }
    for _ in 0..negatives {
        literals.push(Literal::negative(random_pattern_atom(rng)));
    }
    literals
}

fn random_initial(rng: &mut Rng) -> Substitution {
    let mut initial = Substitution::new();
    if rng.chance(30) {
        let variable = stable_tgd::core::var(VARIABLES[rng.below(VARIABLES.len())]);
        initial.bind(variable, random_ground_term(rng));
    }
    initial
}

fn rendered(homomorphisms: &[Substitution]) -> Vec<String> {
    let mut out: Vec<String> = homomorphisms.iter().map(Substitution::to_string).collect();
    out.sort();
    out
}

#[test]
fn indexed_matcher_equals_reference_on_random_conjunctions() {
    for seed in 0..300u64 {
        let mut rng = Rng::new(seed);
        let interpretation = random_interpretation(&mut rng, 14);
        let conjunction = random_conjunction(&mut rng);
        let initial = random_initial(&mut rng);
        let fast = matcher::all_homomorphisms(&conjunction, &interpretation, &initial);
        let naive = reference::all_homomorphisms(&conjunction, &interpretation, &initial);
        assert_eq!(
            rendered(&fast),
            rendered(&naive),
            "seed {seed}: mismatch on {conjunction:?} over {interpretation}"
        );
    }
}

#[test]
fn indexed_matcher_equals_reference_on_unsafe_conjunctions() {
    // Force the unsafe path: negative-only conjunctions plus mixed ones whose
    // negative literals use variables that no positive literal binds.
    for seed in 0..150u64 {
        let mut rng = Rng::new(0xabcd ^ seed);
        let interpretation = random_interpretation(&mut rng, 8);
        let mut conjunction = Vec::new();
        if rng.chance(50) {
            conjunction.push(Literal::positive(random_pattern_atom(&mut rng)));
        }
        for _ in 0..=rng.below(2) {
            conjunction.push(Literal::negative(random_pattern_atom(&mut rng)));
        }
        let initial = random_initial(&mut rng);
        let fast = matcher::all_homomorphisms(&conjunction, &interpretation, &initial);
        let naive = reference::all_homomorphisms(&conjunction, &interpretation, &initial);
        assert_eq!(
            rendered(&fast),
            rendered(&naive),
            "seed {seed}: mismatch on {conjunction:?} over {interpretation}"
        );
    }
}

#[test]
fn exists_agrees_with_nonemptiness_of_the_reference_set() {
    for seed in 0..150u64 {
        let mut rng = Rng::new(0x5151 ^ seed);
        let interpretation = random_interpretation(&mut rng, 10);
        let conjunction = random_conjunction(&mut rng);
        let naive =
            reference::all_homomorphisms(&conjunction, &interpretation, &Substitution::new());
        let exists =
            matcher::exists_homomorphism(&conjunction, &interpretation, &Substitution::new());
        assert_eq!(exists, !naive.is_empty(), "seed {seed}");
    }
}

#[test]
fn delta_matching_partitions_the_homomorphism_space() {
    // For positive conjunctions: homomorphisms into the grown interpretation
    // are exactly the old homomorphisms plus the delta homomorphisms, with no
    // overlap and no duplicates.
    for seed in 0..200u64 {
        let mut rng = Rng::new(0xd17a ^ seed);
        let atoms: Vec<Atom> = {
            let i = random_interpretation(&mut rng, 14);
            i.atoms().cloned().collect()
        };
        let split = if atoms.is_empty() {
            0
        } else {
            rng.below(atoms.len() + 1)
        };
        let old = Interpretation::from_atoms(atoms[..split].iter().cloned());
        let full = Interpretation::from_atoms(atoms.iter().cloned());
        let watermark = old.len();

        let positives: Vec<Atom> = (0..rng.below(3) + 1)
            .map(|_| random_pattern_atom(&mut rng))
            .collect();
        let on_old = matcher::all_atom_homomorphisms(&positives, &old, &Substitution::new());
        let on_full = matcher::all_atom_homomorphisms(&positives, &full, &Substitution::new());
        let delta = matcher::all_atom_homomorphisms_delta(
            &positives,
            &full,
            &Substitution::new(),
            watermark,
        );

        let mut combined = rendered(&on_old);
        combined.extend(rendered(&delta));
        combined.sort();
        assert_eq!(
            combined,
            rendered(&on_full),
            "seed {seed}: delta decomposition failed for {positives:?}"
        );
        // Disjointness: nothing in the delta already matched the old part.
        for h in rendered(&delta) {
            assert!(
                !rendered(&on_old).contains(&h),
                "seed {seed}: duplicate homomorphism {h}"
            );
        }
    }
}

#[test]
fn cached_plan_enumeration_equals_reference() {
    // A plan compiled once (against unrelated, cold statistics) and executed
    // with per-call initial substitutions must enumerate exactly the
    // reference matcher's homomorphism set.
    for seed in 0..200u64 {
        let mut rng = Rng::new(0xcac4e ^ seed);
        let interpretation = random_interpretation(&mut rng, 14);
        let conjunction = random_conjunction(&mut rng);
        let initial = random_initial(&mut rng);
        let plan =
            stable_tgd::core::CompiledConjunction::compile(&conjunction, &Interpretation::new());
        let cached = plan.all(&interpretation, &initial);
        let naive = reference::all_homomorphisms(&conjunction, &interpretation, &initial);
        assert_eq!(
            rendered(&cached),
            rendered(&naive),
            "seed {seed}: cached plan mismatch on {conjunction:?} over {interpretation}"
        );
    }
}

#[test]
fn cached_plan_delta_enumeration_partitions_like_the_reference() {
    // One plan compiled against the old part of the instance serves both the
    // full and the delta enumeration on the grown instance; old + delta must
    // equal the reference matcher's full set, without duplicates.
    for seed in 0..200u64 {
        let mut rng = Rng::new(0xde17a ^ seed);
        let atoms: Vec<Atom> = {
            let i = random_interpretation(&mut rng, 14);
            i.atoms().cloned().collect()
        };
        let split = if atoms.is_empty() {
            0
        } else {
            rng.below(atoms.len() + 1)
        };
        let old = Interpretation::from_atoms(atoms[..split].iter().cloned());
        let full = Interpretation::from_atoms(atoms.iter().cloned());
        let watermark = old.len();

        let positives: Vec<Atom> = (0..rng.below(3) + 1)
            .map(|_| random_pattern_atom(&mut rng))
            .collect();
        let plan = stable_tgd::core::CompiledConjunction::compile_atoms(&positives, &old);
        let on_old = plan.all(&old, &Substitution::new());
        let delta = plan.all_delta(&full, &Substitution::new(), watermark);
        let literals: Vec<Literal> = positives.iter().cloned().map(Literal::positive).collect();
        let on_full_reference =
            reference::all_homomorphisms(&literals, &full, &Substitution::new());

        let mut combined = rendered(&on_old);
        combined.extend(rendered(&delta));
        combined.sort();
        assert_eq!(
            combined,
            rendered(&on_full_reference),
            "seed {seed}: cached delta decomposition failed for {positives:?}"
        );
        for h in rendered(&delta) {
            assert!(
                !rendered(&on_old).contains(&h),
                "seed {seed}: duplicate homomorphism {h}"
            );
        }
    }
}

#[test]
fn fixpoint_runs_compile_each_rule_plan_exactly_once() {
    // The compile-once contract on random existential programs: a chase run
    // compiles exactly one rule-set worth of plans, however many rounds it
    // takes.  The counter is process-wide (so compilations on parallel pool
    // workers are counted too); concurrently running tests may compile plans
    // of their own inside the measured window, so each seed retries until an
    // interference-free window is observed — a chase that genuinely
    // recompiles per round fails every attempt.
    use stable_tgd::core::matcher::plan_compile_count;
    use stable_tgd::core::CompiledRuleSet;
    for seed in 0..16u64 {
        let mut rng = Rng::new(0xc0417 ^ seed);
        let (rules_text, db_text) = existential_program_and_database(&mut rng);
        let program = parse_program(&rules_text).unwrap();
        let database = parse_database(&db_text).unwrap();
        let positive = program.positive_part();
        let mut clean_window = false;
        for _ in 0..50 {
            let before_build = plan_compile_count();
            let _plans = CompiledRuleSet::from_program(&positive, &Interpretation::new());
            let per_build = plan_compile_count() - before_build;
            let before_run = plan_compile_count();
            let _ = stable_tgd::chase::restricted_chase(
                &database,
                &program,
                &stable_tgd::chase::ChaseConfig::with_max_steps(200),
            );
            if per_build > 0 && plan_compile_count() - before_run == per_build {
                clean_window = true;
                break;
            }
        }
        assert!(
            clean_window,
            "seed {seed}: chase recompiled rule plans ({rules_text})"
        );
    }
}

// ---------------------------------------------------------------------------
// Parallel determinism: every thread count produces bit-identical results.
// ---------------------------------------------------------------------------

/// Runs `f` at a fixed worker count and restores the default afterwards.
///
/// The override is process-global; because every parallel consumer is
/// deterministic, another test concurrently changing the override can only
/// change how fast this one runs, never what it computes — which is exactly
/// the property these tests assert.
fn at_thread_count<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    stable_tgd::core::parallel::set_thread_override(Some(threads));
    let result = f();
    stable_tgd::core::parallel::set_thread_override(None);
    result
}

/// All three chase variants produce bit-identical instances — arena
/// insertion order, null names and step counts included — at thread counts
/// 1, 2 and 8 on random existential programs.
#[test]
fn parallel_chase_is_deterministic_across_thread_counts() {
    for seed in 0..8u64 {
        let mut rng = Rng::new(0x9a117e1 ^ seed);
        let (rules_text, db_text) = existential_program_and_database(&mut rng);
        let program = parse_program(&rules_text).unwrap();
        let database = parse_database(&db_text).unwrap();
        let config = stable_tgd::chase::ChaseConfig::with_max_steps(300);
        let run = || {
            let restricted = stable_tgd::chase::restricted_chase(&database, &program, &config);
            let skolem = stable_tgd::chase::skolem_chase(&database, &program, &config);
            let oblivious = stable_tgd::chase::oblivious_chase(&database, &program, &config);
            (
                restricted.instance.atoms().cloned().collect::<Vec<Atom>>(),
                restricted.steps,
                skolem.instance.atoms().cloned().collect::<Vec<Atom>>(),
                skolem.nulls_created,
                oblivious.instance.atoms().cloned().collect::<Vec<Atom>>(),
            )
        };
        let sequential = at_thread_count(1, run);
        for threads in [2usize, 8] {
            let parallel_run = at_thread_count(threads, run);
            assert_eq!(
                parallel_run, sequential,
                "seed {seed}, {threads} threads: chase diverged ({rules_text})"
            );
        }
    }
}

/// SMS grounding + stable-model enumeration and the LP pipeline produce
/// identical model sets (and identical enumeration order) at thread counts
/// 1, 2 and 8 on random normal programs.
#[test]
fn parallel_grounding_and_model_enumeration_are_deterministic() {
    for seed in 0..6u64 {
        let mut rng = Rng::new(0x9a12de7 ^ seed);
        let (rules_text, db_text) = program_and_database(&mut rng);
        let program = parse_program(&rules_text).unwrap();
        let database = parse_database(&db_text).unwrap();
        let run = || {
            let sms = SmsEngine::new(&program).with_null_budget(NullBudget::None);
            let sms_models: Vec<Vec<Atom>> = sms
                .stable_models(&database)
                .unwrap()
                .iter()
                .map(Interpretation::sorted_atoms)
                .collect();
            let lp = LpEngine::new(&database, &program, &LpLimits::default()).unwrap();
            let lp_models: Vec<Vec<Atom>> = lp
                .models()
                .iter()
                .map(Interpretation::sorted_atoms)
                .collect();
            (sms_models, lp_models)
        };
        let sequential = at_thread_count(1, run);
        for threads in [2usize, 8] {
            let parallel_run = at_thread_count(threads, run);
            assert_eq!(
                parallel_run, sequential,
                "seed {seed}, {threads} threads: model enumeration diverged ({rules_text})"
            );
        }
    }
}

/// The small-delta path: with the persistent pool, rounds far below the old
/// `MIN_PARALLEL_WORK` spawn-amortisation gate dispatch to already-running
/// workers instead of falling back to sequential — and must still be
/// bit-identical (arena order, null names, steps) to the one-thread run,
/// with the pool on and with the scoped fallback.  Tiny databases keep every
/// chase round's delta to a handful of atoms.
#[test]
fn parallel_small_delta_rounds_are_deterministic_and_pooled() {
    use stable_tgd::core::parallel;
    // With the pool, even 2-work-unit rounds fan out (far below the scoped
    // fallback's spawn-amortisation threshold).
    const _: () = assert!(parallel::MIN_POOLED_WORK < parallel::MIN_PARALLEL_WORK);
    for seed in 0..8u64 {
        let mut rng = Rng::new(0x5de17a ^ seed);
        let (rules_text, _) = existential_program_and_database(&mut rng);
        // 1-2 facts: every semi-naive round is a small delta.
        let db_text = format!("p(c0, c1). q(c{}, c0).", rng.below(3));
        let program = parse_program(&rules_text).unwrap();
        let database = parse_database(&db_text).unwrap();
        let config = stable_tgd::chase::ChaseConfig::with_max_steps(120);
        let run = || {
            let restricted = stable_tgd::chase::restricted_chase(&database, &program, &config);
            let skolem = stable_tgd::chase::skolem_chase(&database, &program, &config);
            (
                restricted.instance.atoms().cloned().collect::<Vec<Atom>>(),
                restricted.steps,
                skolem.instance.atoms().cloned().collect::<Vec<Atom>>(),
                skolem.nulls_created,
            )
        };
        let sequential = at_thread_count(1, run);
        for threads in [2usize, 8] {
            let pooled = at_thread_count(threads, run);
            assert_eq!(
                pooled, sequential,
                "seed {seed}, {threads} threads (pool): small-delta chase diverged ({rules_text})"
            );
            parallel::set_pool_enabled(Some(false));
            let scoped = at_thread_count(threads, run);
            parallel::set_pool_enabled(None);
            assert_eq!(
                scoped, sequential,
                "seed {seed}, {threads} threads (scoped): small-delta chase diverged ({rules_text})"
            );
        }
    }
}

/// The parallel trigger-discovery partition over `(rule, pivot)` work items
/// returns exactly the sequential trigger sequence on random programs, for
/// both seeded (watermark 0) and delta rounds.
#[test]
fn parallel_trigger_discovery_matches_sequential_order() {
    use stable_tgd::chase::triggers_from_compiled;
    use stable_tgd::core::CompiledRuleSet;
    for seed in 0..8u64 {
        let mut rng = Rng::new(0x7419_9e75 ^ seed);
        let (rules_text, db_text) = existential_program_and_database(&mut rng);
        let program = parse_program(&rules_text).unwrap().positive_part();
        let database = parse_database(&db_text).unwrap();
        let chase = at_thread_count(1, || {
            stable_tgd::chase::restricted_chase(
                &database,
                &program,
                &stable_tgd::chase::ChaseConfig::with_max_steps(120),
            )
        });
        let instance = chase.instance;
        let plans = CompiledRuleSet::from_program(&program, &instance);
        for watermark in [0, instance.len() / 2, instance.len()] {
            let sequential =
                at_thread_count(1, || triggers_from_compiled(&plans, &instance, watermark));
            for threads in [2usize, 8] {
                let parallel_run = at_thread_count(threads, || {
                    triggers_from_compiled(&plans, &instance, watermark)
                });
                assert_eq!(
                    parallel_run, sequential,
                    "seed {seed}, {threads} threads, watermark {watermark}: triggers diverged"
                );
            }
        }
    }
}

#[test]
fn delta_visitors_can_stop_early() {
    let mut rng = Rng::new(99);
    let interpretation = random_interpretation(&mut rng, 12);
    let positives = vec![random_pattern_atom(&mut rng)];
    let mut seen = 0usize;
    matcher::for_each_atom_homomorphism_delta(
        &positives,
        &interpretation,
        &Substitution::new(),
        0,
        &mut |_| {
            seen += 1;
            ControlFlow::Break(())
        },
    );
    assert!(seen <= 1);
}

// ---------------------------------------------------------------------------
// Random existential-free normal programs (text generators as in the old
// proptest strategies).
// ---------------------------------------------------------------------------

/// A small existential-free normal program plus a database over unary
/// predicates, rendered as text.
fn program_and_database(rng: &mut Rng) -> (String, String) {
    let predicates = ["p", "q", "r", "s"];
    let mut rules = String::new();
    for _ in 0..rng.below(4) + 1 {
        let body = *rng.pick(&predicates);
        let negated = *rng.pick(&predicates);
        let head = *rng.pick(&predicates);
        if rng.chance(50) && body != negated {
            rules.push_str(&format!("{body}(X), not {negated}(X) -> {head}(X). "));
        } else {
            rules.push_str(&format!("{body}(X) -> {head}(X). "));
        }
    }
    let mut facts = String::new();
    for _ in 0..rng.below(3) + 1 {
        let pred = *rng.pick(&["p", "q"]);
        facts.push_str(&format!("{pred}(c{}). ", rng.below(3)));
    }
    (rules, facts)
}

/// A small rule set *with* existentially quantified variables over binary
/// predicates, rendered as text, plus a matching database.
fn existential_program_and_database(rng: &mut Rng) -> (String, String) {
    let predicates = ["p", "q", "r"];
    let mut rules = String::new();
    for _ in 0..rng.below(3) + 1 {
        let body = *rng.pick(&predicates);
        let extra = *rng.pick(&predicates);
        let head = *rng.pick(&predicates);
        match (rng.chance(50), rng.chance(50)) {
            (true, _) => rules.push_str(&format!("{body}(X, Y) -> {head}(Y, Z). ")),
            (false, true) => {
                rules.push_str(&format!("{body}(X, Y), {extra}(Y, W) -> {head}(X, W). "));
            }
            (false, false) => rules.push_str(&format!("{body}(X, Y) -> {head}(Y, X). ")),
        }
    }
    let mut facts = String::new();
    for _ in 0..rng.below(3) + 1 {
        let pred = *rng.pick(&["p", "q"]);
        facts.push_str(&format!("{pred}(c{}, c{}). ", rng.below(3), rng.below(3)));
    }
    (rules, facts)
}

/// Theorem 1: on existential-free programs the LP approach and the new SMS
/// semantics have identical stable model sets.
#[test]
fn lp_and_sms_coincide_on_existential_free_programs() {
    for seed in 0..16u64 {
        let mut rng = Rng::new(0x7ea1 ^ seed);
        let (rules_text, db_text) = program_and_database(&mut rng);
        let program = parse_program(&rules_text).unwrap();
        let database = parse_database(&db_text).unwrap();
        let lp = LpEngine::new(&database, &program, &LpLimits::default()).unwrap();
        let mut lp_models: Vec<Vec<Atom>> = lp
            .models()
            .iter()
            .map(Interpretation::sorted_atoms)
            .collect();
        lp_models.sort();
        let sms = SmsEngine::new(&program).with_null_budget(NullBudget::None);
        let mut sms_models: Vec<Vec<Atom>> = sms
            .stable_models(&database)
            .unwrap()
            .iter()
            .map(Interpretation::sorted_atoms)
            .collect();
        sms_models.sort();
        assert_eq!(
            lp_models, sms_models,
            "seed {seed}: {rules_text} / {db_text}"
        );
    }
}

/// Every enumerated stable model passes the direct Definition-1 check and the
/// Lemma-7 support check.
#[test]
fn enumerated_models_are_stable_and_supported() {
    for seed in 0..16u64 {
        let mut rng = Rng::new(0x57ab ^ seed);
        let (rules_text, db_text) = program_and_database(&mut rng);
        let program = parse_program(&rules_text).unwrap();
        let database = parse_database(&db_text).unwrap();
        let sms = SmsEngine::new(&program).with_null_budget(NullBudget::None);
        for model in sms.stable_models(&database).unwrap() {
            assert!(stable_tgd::sms::is_stable_model(
                &database, &program, &model
            ));
            assert!(stable_tgd::sms::is_supported_by_operator(
                &database, &program, &model
            ));
            assert!(database.facts().all(|f| model.contains(f)));
        }
    }
}

/// Printing a rule and re-parsing it is the identity.
#[test]
fn rule_display_round_trips() {
    for seed in 0..16u64 {
        let mut rng = Rng::new(0xd15b ^ seed);
        let (rules_text, _) = program_and_database(&mut rng);
        let program = parse_program(&rules_text).unwrap();
        for rule in program.rules() {
            let reparsed = parse_rule(&rule.to_string()).unwrap();
            assert_eq!(rule, &reparsed);
        }
    }
}

/// The classifiers never panic and weak-acyclicity of an existential-free
/// program always holds.
#[test]
fn existential_free_programs_are_weakly_acyclic() {
    for seed in 0..16u64 {
        let mut rng = Rng::new(0xacc1 ^ seed);
        let (rules_text, _) = program_and_database(&mut rng);
        let program = parse_program(&rules_text).unwrap();
        assert!(stable_tgd::classes::is_weakly_acyclic(&program));
        let _ = stable_tgd::classes::is_sticky(&program);
        let _ = stable_tgd::classes::is_guarded(&program);
    }
}

/// The known containments between the implemented classes (WA ⊆ JA ⊆ MFA,
/// linear ⊆ guarded ⊆ weakly-guarded, …) hold on random rule sets.
#[test]
fn class_containments_hold_on_random_programs() {
    for seed in 0..16u64 {
        let mut rng = Rng::new(0xc095 ^ seed);
        let (rules_text, _) = existential_program_and_database(&mut rng);
        let program = parse_program(&rules_text).unwrap();
        let report = stable_tgd::classes::classify(&program);
        assert_eq!(
            report.violated_containment(),
            None,
            "seed {seed}: {rules_text}"
        );
    }
}

/// On chase-terminating programs the restricted, Skolem and oblivious chases
/// are ordered by size and have cores of equal size (they are
/// homomorphically equivalent universal models).
#[test]
fn chase_variants_are_ordered_and_homomorphically_equivalent() {
    for seed in 0..16u64 {
        let mut rng = Rng::new(0xc4a5 ^ seed);
        let (rules_text, db_text) = existential_program_and_database(&mut rng);
        let program = parse_program(&rules_text).unwrap();
        let database = parse_database(&db_text).unwrap();
        let config = stable_tgd::chase::ChaseConfig::with_max_steps(300);
        let restricted = stable_tgd::chase::restricted_chase(&database, &program, &config);
        let skolem = stable_tgd::chase::skolem_chase(&database, &program, &config);
        let oblivious = stable_tgd::chase::oblivious_chase(&database, &program, &config);
        // Only compare fully terminated runs (the random program may be
        // non-terminating, in which case the step bound kicks in).
        if restricted.terminated() && skolem.terminated() && oblivious.terminated() {
            assert!(restricted.instance.len() <= skolem.instance.len());
            assert!(skolem.instance.len() <= oblivious.instance.len());
            if skolem.instance.len() <= 60 {
                let restricted_core = stable_tgd::chase::core_of(&restricted.instance);
                let skolem_core = stable_tgd::chase::core_of(&skolem.instance);
                assert_eq!(restricted_core.len(), skolem_core.len(), "seed {seed}");
            }
        }
    }
}

/// Min-fill and min-degree decompositions of the chase instance are valid
/// tree decompositions, and they never beat the exact treewidth.
#[test]
fn heuristic_decompositions_of_chase_instances_are_valid() {
    for seed in 0..16u64 {
        let mut rng = Rng::new(0xdec0 ^ seed);
        let (rules_text, db_text) = existential_program_and_database(&mut rng);
        let program = parse_program(&rules_text).unwrap();
        let database = parse_database(&db_text).unwrap();
        let config = stable_tgd::chase::ChaseConfig::with_max_steps(60);
        let chase = stable_tgd::chase::restricted_chase(&database, &program, &config);
        let graph = stable_tgd::treewidth::GaifmanGraph::of_interpretation(&chase.instance);
        let min_fill = stable_tgd::treewidth::min_fill_decomposition(&graph);
        let min_degree = stable_tgd::treewidth::min_degree_decomposition(&graph);
        assert_eq!(min_fill.validate(&graph), Ok(()));
        assert_eq!(min_degree.validate(&graph), Ok(()));
        assert!(min_fill
            .validate_for_interpretation(&chase.instance)
            .is_ok());
        if graph.vertex_count() <= 14 {
            let exact = stable_tgd::treewidth::exact_treewidth(&graph);
            assert!(min_fill.width() >= exact);
            assert!(min_degree.width() >= exact);
        }
    }
}

/// The EFWFS of an existential-free, negation-free program entails every
/// atom of its unique (least) model that the LP engine entails.
#[test]
fn efwfs_and_lp_agree_on_positive_existential_free_programs() {
    for seed in 0..8u64 {
        let mut rng = Rng::new(0xefef ^ seed);
        let (rules_text, db_text) = program_and_database(&mut rng);
        let program = parse_program(&rules_text).unwrap();
        // Keep only the negation-free rules: on these the least model is the
        // unique stable model and also the unique (two-valued) WFS model.
        let positive =
            Program::from_rules(program.rules().iter().filter(|r| r.is_positive()).cloned())
                .unwrap();
        let database = parse_database(&db_text).unwrap();
        let config = stable_tgd::lp::EfwfsConfig {
            fresh_constants: 0,
            unify_database_constants: false,
            ..stable_tgd::lp::EfwfsConfig::default()
        };
        let lp = LpEngine::new(&database, &positive, &LpLimits::default()).unwrap();
        if lp.models().len() != 1 {
            continue;
        }
        for atom in lp.models()[0].atoms() {
            let q = Query::boolean(vec![Literal::positive(atom.clone())]).unwrap();
            let outcome = stable_tgd::lp::efwfs_entails_cautious(&database, &positive, &q, &config);
            assert!(
                outcome.entailed,
                "seed {seed}: EFWFS does not entail {atom}"
            );
        }
    }
}
