//! Property-based tests over randomly generated programs, databases and
//! formulas.

use proptest::prelude::*;

use stable_tgd::core::{Interpretation, Atom};
use stable_tgd::lp::{LpEngine, LpLimits};
use stable_tgd::parser::{parse_database, parse_program, parse_rule};
use stable_tgd::sms::{NullBudget, SmsEngine};

/// Strategy: a small existential-free normal program plus a database over
/// unary predicates, rendered as text.
fn program_and_database() -> impl Strategy<Value = (String, String)> {
    let predicates = prop::sample::select(vec!["p", "q", "r", "s"]);
    let fact = (prop::sample::select(vec!["p", "q"]), 0..3u8)
        .prop_map(|(p, c)| format!("{p}(c{c}). "));
    let rule = (predicates.clone(), predicates.clone(), predicates, any::<bool>()).prop_map(
        |(body, neg, head, use_neg)| {
            if use_neg && body != neg {
                format!("{body}(X), not {neg}(X) -> {head}(X). ")
            } else {
                format!("{body}(X) -> {head}(X). ")
            }
        },
    );
    (
        prop::collection::vec(rule, 1..5).prop_map(|v| v.concat()),
        prop::collection::vec(fact, 1..4).prop_map(|v| v.concat()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Theorem 1: on existential-free programs the LP approach and the new
    /// SMS semantics have identical stable model sets.
    #[test]
    fn lp_and_sms_coincide_on_existential_free_programs(
        (rules_text, db_text) in program_and_database()
    ) {
        let program = parse_program(&rules_text).unwrap();
        let database = parse_database(&db_text).unwrap();
        let lp = LpEngine::new(&database, &program, &LpLimits::default()).unwrap();
        let mut lp_models: Vec<Vec<Atom>> =
            lp.models().iter().map(Interpretation::sorted_atoms).collect();
        lp_models.sort();
        let sms = SmsEngine::new(program).with_null_budget(NullBudget::None);
        let mut sms_models: Vec<Vec<Atom>> = sms
            .stable_models(&database)
            .unwrap()
            .iter()
            .map(Interpretation::sorted_atoms)
            .collect();
        sms_models.sort();
        prop_assert_eq!(lp_models, sms_models);
    }

    /// Every enumerated stable model passes the direct Definition-1 check and
    /// the Lemma-7 support check.
    #[test]
    fn enumerated_models_are_stable_and_supported(
        (rules_text, db_text) in program_and_database()
    ) {
        let program = parse_program(&rules_text).unwrap();
        let database = parse_database(&db_text).unwrap();
        let sms = SmsEngine::new(program.clone()).with_null_budget(NullBudget::None);
        for model in sms.stable_models(&database).unwrap() {
            prop_assert!(stable_tgd::sms::is_stable_model(&database, &program, &model));
            prop_assert!(stable_tgd::sms::is_supported_by_operator(&database, &program, &model));
            prop_assert!(database.facts().all(|f| model.contains(f)));
        }
    }

    /// Printing a rule and re-parsing it is the identity.
    #[test]
    fn rule_display_round_trips(
        (rules_text, _) in program_and_database()
    ) {
        let program = parse_program(&rules_text).unwrap();
        for rule in program.rules() {
            let reparsed = parse_rule(&rule.to_string()).unwrap();
            prop_assert_eq!(rule, &reparsed);
        }
    }

    /// The classifiers never panic and weak-acyclicity of an existential-free
    /// program always holds.
    #[test]
    fn existential_free_programs_are_weakly_acyclic(
        (rules_text, _) in program_and_database()
    ) {
        let program = parse_program(&rules_text).unwrap();
        prop_assert!(stable_tgd::classes::is_weakly_acyclic(&program));
        let _ = stable_tgd::classes::is_sticky(&program);
        let _ = stable_tgd::classes::is_guarded(&program);
    }
}

/// Strategy: a small rule set *with* existentially quantified variables over
/// binary predicates, rendered as text, plus a matching database.
fn existential_program_and_database() -> impl Strategy<Value = (String, String)> {
    let predicates = prop::sample::select(vec!["p", "q", "r"]);
    let fact = (prop::sample::select(vec!["p", "q"]), 0..3u8, 0..3u8)
        .prop_map(|(pred, a, b)| format!("{pred}(c{a}, c{b}). "));
    let rule = (
        predicates.clone(),
        predicates.clone(),
        predicates,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(body, extra, head, existential, join)| {
            match (existential, join) {
                // body(X, Y) -> head(Y, Z)
                (true, _) => format!("{body}(X, Y) -> {head}(Y, Z). "),
                // body(X, Y), extra(Y, W) -> head(X, W)
                (false, true) => format!("{body}(X, Y), {extra}(Y, W) -> {head}(X, W). "),
                // body(X, Y) -> head(Y, X)
                (false, false) => format!("{body}(X, Y) -> {head}(Y, X). "),
            }
        });
    (
        prop::collection::vec(rule, 1..4).prop_map(|v| v.concat()),
        prop::collection::vec(fact, 1..4).prop_map(|v| v.concat()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The known containments between the implemented classes (WA ⊆ JA ⊆ MFA,
    /// linear ⊆ guarded ⊆ weakly-guarded, …) hold on random rule sets.
    #[test]
    fn class_containments_hold_on_random_programs(
        (rules_text, _) in existential_program_and_database()
    ) {
        let program = parse_program(&rules_text).unwrap();
        let report = stable_tgd::classes::classify(&program);
        prop_assert_eq!(report.violated_containment(), None);
    }

    /// On chase-terminating programs the restricted, Skolem and oblivious
    /// chases are ordered by size and have cores of equal size (they are
    /// homomorphically equivalent universal models).
    #[test]
    fn chase_variants_are_ordered_and_homomorphically_equivalent(
        (rules_text, db_text) in existential_program_and_database()
    ) {
        let program = parse_program(&rules_text).unwrap();
        let database = parse_database(&db_text).unwrap();
        let config = stable_tgd::chase::ChaseConfig::with_max_steps(300);
        let restricted = stable_tgd::chase::restricted_chase(&database, &program, &config);
        let skolem = stable_tgd::chase::skolem_chase(&database, &program, &config);
        let oblivious = stable_tgd::chase::oblivious_chase(&database, &program, &config);
        // Only compare fully terminated runs (the random program may be
        // non-terminating, in which case the step bound kicks in).
        if restricted.terminated() && skolem.terminated() && oblivious.terminated() {
            prop_assert!(restricted.instance.len() <= skolem.instance.len());
            prop_assert!(skolem.instance.len() <= oblivious.instance.len());
            if skolem.instance.len() <= 60 {
                let restricted_core = stable_tgd::chase::core_of(&restricted.instance);
                let skolem_core = stable_tgd::chase::core_of(&skolem.instance);
                prop_assert_eq!(restricted_core.len(), skolem_core.len());
            }
        }
    }

    /// Min-fill and min-degree decompositions of the chase instance are valid
    /// tree decompositions, and they never beat the exact treewidth.
    #[test]
    fn heuristic_decompositions_of_chase_instances_are_valid(
        (rules_text, db_text) in existential_program_and_database()
    ) {
        let program = parse_program(&rules_text).unwrap();
        let database = parse_database(&db_text).unwrap();
        let config = stable_tgd::chase::ChaseConfig::with_max_steps(60);
        let chase = stable_tgd::chase::restricted_chase(&database, &program, &config);
        let graph = stable_tgd::treewidth::GaifmanGraph::of_interpretation(&chase.instance);
        let min_fill = stable_tgd::treewidth::min_fill_decomposition(&graph);
        let min_degree = stable_tgd::treewidth::min_degree_decomposition(&graph);
        prop_assert_eq!(min_fill.validate(&graph), Ok(()));
        prop_assert_eq!(min_degree.validate(&graph), Ok(()));
        prop_assert_eq!(
            min_fill.validate_for_interpretation(&chase.instance).is_ok(),
            true
        );
        if graph.vertex_count() <= 14 {
            let exact = stable_tgd::treewidth::exact_treewidth(&graph);
            prop_assert!(min_fill.width() >= exact);
            prop_assert!(min_degree.width() >= exact);
        }
    }

    /// The EFWFS of an existential-free, negation-free program entails every
    /// atom of its unique (least) model that the LP engine entails.
    #[test]
    fn efwfs_and_lp_agree_on_positive_existential_free_programs(
        (rules_text, db_text) in program_and_database()
    ) {
        let program = parse_program(&rules_text).unwrap();
        // Keep only the negation-free rules: on these the least model is the
        // unique stable model and also the unique (two-valued) WFS model.
        let positive = stable_tgd::core::Program::from_rules(
            program.rules().iter().filter(|r| r.is_positive()).cloned()
        ).unwrap();
        let database = parse_database(&db_text).unwrap();
        let config = stable_tgd::lp::EfwfsConfig {
            fresh_constants: 0,
            unify_database_constants: false,
            ..stable_tgd::lp::EfwfsConfig::default()
        };
        let lp = LpEngine::new(&database, &positive, &LpLimits::default()).unwrap();
        prop_assume!(lp.models().len() == 1);
        for atom in lp.models()[0].atoms() {
            let q = stable_tgd::core::Query::boolean(
                vec![stable_tgd::core::Literal::positive(atom.clone())]
            ).unwrap();
            let outcome = stable_tgd::lp::efwfs_entails_cautious(&database, &positive, &q, &config);
            prop_assert!(outcome.entailed, "EFWFS does not entail {atom}");
        }
    }
}
